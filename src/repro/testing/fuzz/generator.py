"""Random continuous-query generator walking the Figure-3 operator taxonomy.

Every query the generator emits is *guaranteed valid*: after drawing the
SQL it is planned, optimized and submitted (both incremental and reeval
mode) against a throwaway engine holding the drawn schemas — a draw that
any layer rejects is discarded and retried, so downstream oracle code
never has to special-case unsupported shapes.

The taxonomy dimensions (paper Figure 3) are tracked as *features* on
each :class:`FuzzQuery`; the fuzz runner rotates a ``focus`` feature
through :data:`TAXONOMY` so a modest budget still covers every operator
class deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.engine import DataCellEngine
from repro.errors import ReproError

#: The Figure-3 operator classes the generator must cover.  Each entry is
#: a feature tag a query can carry; the runner's coverage table is keyed
#: on exactly this tuple.
TAXONOMY: tuple[str, ...] = (
    "select",
    "project",
    "sum",
    "min",
    "max",
    "count",
    "avg",
    "group-by",
    "distinct",
    "order-by",
    "join",
    "single-stream",
    "multi-stream",
    "window-count",
    "window-time",
    "window-landmark",
)

#: Time-based window steps, in milliseconds (parser multiplies by 1000).
_TIME_STEPS_MS = (10, 20, 50)


@dataclass(frozen=True)
class WindowGeometry:
    """One stream's window: |W|/|w| plus kind, renderable back to SQL.

    ``size``/``step`` are tuple counts for count-based windows and
    *milliseconds* for time-based ones (the SQL clause carries the unit).
    """

    kind: str  # "sliding" | "tumbling" | "landmark"
    size: Optional[int]
    step: int
    time_based: bool = False

    def clause(self) -> str:
        unit = " MILLISECONDS" if self.time_based else ""
        if self.kind == "landmark":
            return f"[LANDMARK SLIDE {self.step}{unit}]"
        if self.kind == "tumbling":
            return f"[RANGE {self.size}{unit}]"
        return f"[RANGE {self.size}{unit} SLIDE {self.step}{unit}]"

    @property
    def size_us(self) -> Optional[int]:
        return self.size * 1_000 if (self.time_based and self.size) else self.size

    @property
    def step_us(self) -> int:
        return self.step * 1_000 if self.time_based else self.step

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "size": self.size,
            "step": self.step,
            "time_based": self.time_based,
        }

    @staticmethod
    def from_json(data: dict) -> "WindowGeometry":
        return WindowGeometry(
            data["kind"], data["size"], data["step"], data["time_based"]
        )


@dataclass
class FuzzQuery:
    """A generated continuous query, kept clause-by-clause.

    The structured form (not just the SQL string) is what makes the
    minimizer and the metamorphic relations possible: clauses can be
    dropped or windows swapped and the SQL re-rendered.
    """

    select_items: list[str]
    distinct: bool
    aliases: list[str]  # FROM order; streams first, then the table if any
    windows: dict[str, WindowGeometry]  # stream alias -> geometry
    join_cond: Optional[str]
    where: Optional[str]
    group_by: list[str]
    having: Optional[str]
    order_by: list[str]
    streams: dict[str, list[tuple[str, str]]]  # name -> [(col, type), ...]
    tables: dict[str, dict] = field(default_factory=dict)
    # name -> {"columns": [(col, type)], "rows": [[...], ...]}
    features: frozenset = frozenset()

    # -- rendering -----------------------------------------------------
    def render(
        self, windows: Optional[dict[str, WindowGeometry]] = None
    ) -> str:
        """The SQL text, optionally with substituted window geometries."""
        windows = windows if windows is not None else self.windows
        froms = []
        for alias in self.aliases:
            if alias in windows:
                froms.append(f"{alias} {windows[alias].clause()}")
            else:
                froms.append(alias)
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(self.select_items))
        parts.append("FROM " + ", ".join(froms))
        conjuncts = []
        if self.join_cond:
            conjuncts.append(self.join_cond)
        if self.where:
            conjuncts.append(f"({self.where})")
        if conjuncts:
            parts.append("WHERE " + " AND ".join(conjuncts))
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(self.group_by))
        if self.having:
            parts.append("HAVING " + self.having)
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(self.order_by))
        return " ".join(parts)

    @property
    def sql(self) -> str:
        return self.render()

    # -- capability flags ----------------------------------------------
    @property
    def time_based(self) -> bool:
        return any(g.time_based for g in self.windows.values())

    @property
    def systemx_ok(self) -> bool:
        """SystemX rejects time windows and stream⋈table joins."""
        return not self.time_based and not self.tables

    @property
    def chunk_ok(self) -> bool:
        """m-chunk stepping needs a single count-based sliding window."""
        if len(self.aliases) != 1:
            return False
        geometry = next(iter(self.windows.values()))
        return not geometry.time_based and geometry.kind != "landmark"

    @property
    def partition_key(self) -> Optional[str]:
        """First hashable column of the (single) stream, if any."""
        if len(self.streams) != 1:
            return None
        for name, atom in next(iter(self.streams.values())):
            if atom in ("int", "str", "bool"):
                return name
        return None

    @property
    def has_landmark(self) -> bool:
        return any(g.kind == "landmark" for g in self.windows.values())

    @property
    def partition_ok(self) -> bool:
        """Sharded execution covers single-stream queries with a hashable
        key — landmark included since the partitioned-landmark rework;
        DISTINCT+ORDER BY stays out because the merge only supports order
        keys that appear in the output list."""
        if len(self.aliases) != 1 or self.tables:
            return False
        if self.distinct and self.order_by:
            return False
        return self.partition_key is not None

    # -- (de)serialization ---------------------------------------------
    def to_json(self) -> dict:
        return {
            "select_items": list(self.select_items),
            "distinct": self.distinct,
            "aliases": list(self.aliases),
            "windows": {a: g.to_json() for a, g in self.windows.items()},
            "join_cond": self.join_cond,
            "where": self.where,
            "group_by": list(self.group_by),
            "having": self.having,
            "order_by": list(self.order_by),
            "streams": {n: [list(c) for c in cols] for n, cols in self.streams.items()},
            "tables": {
                n: {
                    "columns": [list(c) for c in t["columns"]],
                    "rows": [list(r) for r in t["rows"]],
                }
                for n, t in self.tables.items()
            },
            "features": sorted(self.features),
        }

    @staticmethod
    def from_json(data: dict) -> "FuzzQuery":
        return FuzzQuery(
            select_items=list(data["select_items"]),
            distinct=data["distinct"],
            aliases=list(data["aliases"]),
            windows={
                a: WindowGeometry.from_json(g) for a, g in data["windows"].items()
            },
            join_cond=data["join_cond"],
            where=data["where"],
            group_by=list(data["group_by"]),
            having=data["having"],
            order_by=list(data["order_by"]),
            streams={
                n: [tuple(c) for c in cols] for n, cols in data["streams"].items()
            },
            tables={
                n: {
                    "columns": [tuple(c) for c in t["columns"]],
                    "rows": [list(r) for r in t["rows"]],
                }
                for n, t in data.get("tables", {}).items()
            },
            features=frozenset(data.get("features", ())),
        )


@dataclass
class Feed:
    """Deterministic input data for one query's streams.

    ``columns`` holds plain Python lists (JSON-serializable for the
    ``.repro.json`` replay format); ``timestamps`` are microseconds for
    time-based streams, None otherwise.  ``punctuate`` maps a stream to a
    closing ``advance_time`` watermark.
    """

    columns: dict[str, dict[str, list]]
    timestamps: dict[str, Optional[list[int]]]
    punctuate: dict[str, int] = field(default_factory=dict)

    def row_count(self, stream: str) -> int:
        cols = self.columns[stream]
        return len(next(iter(cols.values()))) if cols else 0

    def rows(self, stream: str, schema: list[tuple[str, str]]) -> list[tuple]:
        """Schema-ordered row tuples (the SystemX ingestion shape)."""
        cols = [self.columns[stream][name] for name, __ in schema]
        return list(zip(*cols)) if cols else []

    def watermark(self, stream: str) -> Optional[int]:
        """The final time watermark the engine observes for ``stream``."""
        ts = self.timestamps.get(stream)
        high = max(ts) if ts else None
        punct = self.punctuate.get(stream)
        if punct is None:
            return high
        return punct if high is None else max(high, punct)

    def to_json(self) -> dict:
        return {
            "columns": self.columns,
            "timestamps": self.timestamps,
            "punctuate": self.punctuate,
        }

    @staticmethod
    def from_json(data: dict) -> "Feed":
        return Feed(
            columns={
                s: {c: list(v) for c, v in cols.items()}
                for s, cols in data["columns"].items()
            },
            timestamps={
                s: (list(v) if v is not None else None)
                for s, v in data["timestamps"].items()
            },
            punctuate={s: int(v) for s, v in data.get("punctuate", {}).items()},
        )


class QueryGenerator:
    """Draws random valid continuous queries + matching feeds.

    Deterministic given its RNG: the fuzz runner hands a fresh
    ``np.random.default_rng([seed, iteration])`` per iteration so every
    draw is replayable from the two integers alone.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    # ------------------------------------------------------------------
    def query(self, focus: Optional[str] = None, attempts: int = 40) -> FuzzQuery:
        """One valid query; ``focus`` forces a taxonomy feature in."""
        last_error: Optional[Exception] = None
        for __ in range(attempts):
            try:
                candidate = self._draw(focus)
                self._validate(candidate)
            except ReproError as exc:
                last_error = exc
                continue
            return candidate
        raise ReproError(
            f"could not draw a valid query for focus {focus!r}: {last_error}"
        )

    def _validate(self, query: FuzzQuery) -> None:
        """Submit against a throwaway engine in both modes; raises on reject."""
        engine = build_engine(query)
        try:
            engine.submit(query.sql, mode="incremental")
            engine.submit(query.sql, mode="reeval")
        finally:
            engine.close()

    # ------------------------------------------------------------------
    # drawing
    # ------------------------------------------------------------------
    def _draw(self, focus: Optional[str]) -> FuzzQuery:
        rng = self.rng
        features: set[str] = set()

        join = focus in ("join", "multi-stream") or (
            focus not in ("single-stream", "window-time") and rng.random() < 0.30
        )
        time_based = focus == "window-time" or (
            not join and focus not in ("window-count", "window-landmark", "join")
            and rng.random() < 0.25
        )
        with_table = join and rng.random() < 0.30

        streams: dict[str, list[tuple[str, str]]] = {}
        aliases: list[str] = []
        n_streams = 2 if (join and not with_table) else 1
        for index in range(n_streams):
            name = f"s{index}"
            streams[name] = self._stream_schema(index)
            aliases.append(name)

        windows: dict[str, WindowGeometry] = {}
        for alias in aliases:
            want_landmark = focus == "window-landmark" and alias == aliases[0]
            windows[alias] = self._window(time_based, want_landmark)
        if time_based:
            features.add("window-time")
        for geometry in windows.values():
            if geometry.kind == "landmark":
                features.add("window-landmark")
            elif not geometry.time_based:
                features.add("window-count")

        tables: dict[str, dict] = {}
        join_cond: Optional[str] = None
        if join:
            if with_table:
                tables["t0"] = self._table()
                aliases.append("t0")
                right_alias, right_cols = "t0", tables["t0"]["columns"]
            else:
                right_alias, right_cols = "s1", streams["s1"]
            left_key = self._pick_column(streams["s0"], "int")
            right_key = self._pick_column(right_cols, "int")
            join_cond = f"s0.{left_key} = {right_alias}.{right_key}"
            features.update(("join", "multi-stream"))
        else:
            features.add("single-stream")

        qualify = len(aliases) > 1

        def col(alias: str, name: str) -> str:
            return f"{alias}.{name}" if qualify else name

        all_cols = [
            (alias, name, atom)
            for alias in aliases
            for name, atom in (
                streams.get(alias) or tables[alias]["columns"]
            )
        ]
        int_cols = [(a, n) for a, n, t in all_cols if t == "int"]
        num_cols = [(a, n) for a, n, t in all_cols if t in ("int", "float")]
        str_cols = [(a, n) for a, n, t in all_cols if t == "str"]

        aggregate = focus in (
            "sum", "min", "max", "count", "avg", "group-by"
        ) or (focus not in ("project", "distinct") and rng.random() < 0.55)

        select_items: list[str] = []
        group_by: list[str] = []
        having: Optional[str] = None
        output_names: list[str] = []
        distinct = False

        if aggregate:
            n_keys = 0
            if focus == "group-by" or rng.random() < 0.6:
                n_keys = int(rng.integers(1, 3))
            key_pool = int_cols + str_cols
            rng.shuffle(key_pool)
            keys = key_pool[: min(n_keys, len(key_pool))]
            for index, (alias, name) in enumerate(keys):
                out = f"g{index}"
                group_by.append(col(alias, name))
                select_items.append(f"{col(alias, name)} AS {out}")
                output_names.append(out)
            if keys:
                features.add("group-by")
            funcs = self._agg_funcs(focus)
            for index, func in enumerate(funcs):
                features.add(func)
                out = f"a{index}"
                if func == "count" and rng.random() < 0.5:
                    select_items.append(f"count(*) AS {out}")
                else:
                    alias, name = num_cols[int(rng.integers(len(num_cols)))]
                    arg = col(alias, name)
                    if func in ("sum", "avg") and rng.random() < 0.3:
                        arg = f"{arg} * {int(rng.integers(2, 5))}"
                        features.add("project")
                    select_items.append(f"{func}({arg}) AS {out}")
                output_names.append(out)
            if rng.random() < 0.25:
                func = funcs[0]
                if func == "count":
                    having = f"count(*) >= {int(rng.integers(1, 3))}"
                else:
                    alias, name = num_cols[int(rng.integers(len(num_cols)))]
                    having = f"{func}({col(alias, name)}) > {int(rng.integers(0, 6))}"
            # DISTINCT over a bare aggregate output would dedupe float
            # noise differently per engine; with every group key in the
            # select list it is semantically a no-op yet still exercises
            # the operator in every engine.
            if rng.random() < 0.10 and keys:
                distinct = True
        else:
            n_items = int(rng.integers(1, 4))
            pool = [(a, n) for a, n, __ in all_cols]
            rng.shuffle(pool)
            force_expr = focus == "project"
            for index in range(min(n_items, len(pool))):
                alias, name = pool[index]
                out = f"o{index}"
                want_expr = force_expr or rng.random() < 0.35
                if (alias, name) in int_cols and want_expr:
                    op = "+" if rng.random() < 0.5 else "*"
                    expr = f"{col(alias, name)} {op} {int(rng.integers(1, 4))}"
                    select_items.append(f"{expr} AS {out}")
                    force_expr = False
                else:
                    select_items.append(f"{col(alias, name)} AS {out}")
                output_names.append(out)
            if force_expr:  # no int column drawn yet — append one
                alias, name = int_cols[int(rng.integers(len(int_cols)))]
                out = f"o{len(output_names)}"
                select_items.append(f"{col(alias, name)} + 1 AS {out}")
                output_names.append(out)
            if focus == "distinct" or rng.random() < 0.30:
                distinct = True

        if distinct:
            features.add("distinct")
        # every query carries a projection node (Figure 3's π)
        features.add("project")

        where: Optional[str] = None
        if focus == "select" or rng.random() < 0.60:
            where = self._predicate(rng, int_cols, str_cols, col)
        if where is not None or having is not None:
            features.add("select")  # Figure 3's σ (WHERE / HAVING filter)

        order_by: list[str] = []
        if focus == "order-by" or rng.random() < 0.40:
            candidates = list(output_names)
            rng.shuffle(candidates)
            for name in candidates[: int(rng.integers(1, len(candidates) + 1))]:
                suffix = " DESC" if rng.random() < 0.4 else ""
                order_by.append(f"{name}{suffix}")
            features.add("order-by")

        return FuzzQuery(
            select_items=select_items,
            distinct=distinct,
            aliases=aliases,
            windows=windows,
            join_cond=join_cond,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            streams=streams,
            tables=tables,
            features=frozenset(features),
        )

    # ------------------------------------------------------------------
    def _stream_schema(self, index: int) -> list[tuple[str, str]]:
        rng = self.rng
        columns = [("c0", "int"), ("c1", "int")]
        if rng.random() < 0.55:
            columns.append(("c2", "float"))
        if rng.random() < 0.35:
            columns.append(("c3", "str"))
        return columns

    def _table(self) -> dict:
        rng = self.rng
        columns = [("k0", "int"), ("v0", "int")]
        domain = int(rng.integers(3, 9))
        rows = [
            [int(rng.integers(0, domain)), int(rng.integers(0, 20))]
            for __ in range(int(rng.integers(2, 7)))
        ]
        return {"columns": columns, "rows": rows}

    def _window(self, time_based: bool, landmark: bool) -> WindowGeometry:
        rng = self.rng
        if landmark or rng.random() < 0.12:
            if time_based:
                step = int(_TIME_STEPS_MS[int(rng.integers(len(_TIME_STEPS_MS)))])
            else:
                step = int(rng.integers(2, 9))
            return WindowGeometry("landmark", None, step, time_based)
        if time_based:
            step = int(_TIME_STEPS_MS[int(rng.integers(len(_TIME_STEPS_MS)))])
            n = int(rng.integers(1, 5))
        else:
            step = int(rng.integers(1, 7))
            n = int(rng.integers(1, 7))
        kind = "tumbling" if n == 1 else "sliding"
        return WindowGeometry(kind, n * step, step if n > 1 else n * step, time_based)

    def _pick_column(self, columns: list[tuple[str, str]], atom: str) -> str:
        pool = [name for name, t in columns if t == atom]
        return pool[int(self.rng.integers(len(pool)))]

    def _agg_funcs(self, focus: Optional[str]) -> list[str]:
        rng = self.rng
        pool = ["sum", "min", "max", "count", "avg"]
        count = int(rng.integers(1, 4))
        rng.shuffle(pool)
        funcs = pool[:count]
        if focus in pool and focus not in funcs:
            funcs[0] = focus
        return funcs

    def _predicate(self, rng, int_cols, str_cols, col) -> str:
        atoms = []
        for __ in range(int(rng.integers(1, 3))):
            if str_cols and rng.random() < 0.25:
                alias, name = str_cols[int(rng.integers(len(str_cols)))]
                atoms.append(f"{col(alias, name)} = 't{int(rng.integers(0, 3))}'")
                continue
            alias, name = int_cols[int(rng.integers(len(int_cols)))]
            op = ("<", "<=", ">", ">=", "=", "!=")[int(rng.integers(6))]
            atoms.append(f"{col(alias, name)} {op} {int(rng.integers(0, 7))}")
        glue = " AND " if rng.random() < 0.6 else " OR "
        predicate = glue.join(atoms)
        if rng.random() < 0.15:
            predicate = f"NOT ({predicate})"
        return predicate

    # ------------------------------------------------------------------
    # feeds
    # ------------------------------------------------------------------
    def feed(self, query: FuzzQuery, rows_scale: float = 1.0) -> Feed:
        """A feed sized so every stream fires a handful of windows."""
        rng = self.rng
        columns: dict[str, dict[str, list]] = {}
        timestamps: dict[str, Optional[list[int]]] = {}
        punctuate: dict[str, int] = {}
        domain = int(rng.integers(3, 9))
        for alias in query.streams:
            geometry = query.windows[alias]
            if geometry.time_based:
                count = int(rng.integers(8, 32) * rows_scale) or 1
                target = int(rng.integers(2, 5))
                span = (geometry.size_us or geometry.step_us) + target * geometry.step_us
                origin = 1_000_000 + int(rng.integers(0, 10_000))
                ts = sorted(
                    int(v) for v in rng.integers(origin, origin + span, size=count)
                )
                timestamps[alias] = ts
                if rng.random() < 0.6:
                    punctuate[alias] = ts[-1] + geometry.step_us
            else:
                target = int(rng.integers(1, 5))
                base = geometry.size or geometry.step
                count = base + (target - 1) * geometry.step + int(
                    rng.integers(0, geometry.step + 1)
                )
                count = max(1, int(count * rows_scale))
                timestamps[alias] = None
            columns[alias] = self._values(query.streams[alias], count, domain)
        return Feed(columns=columns, timestamps=timestamps, punctuate=punctuate)

    def _values(
        self, schema: list[tuple[str, str]], count: int, domain: int
    ) -> dict[str, list]:
        rng = self.rng
        out: dict[str, list] = {}
        for name, atom in schema:
            if atom == "int":
                out[name] = [int(v) for v in rng.integers(0, domain, size=count)]
            elif atom == "float":
                # quarter-steps keep sums exactly representable, so only
                # genuinely order-sensitive float paths (avg) need the
                # oracle's tolerance
                out[name] = [float(v) / 4.0 for v in rng.integers(0, 40, size=count)]
            else:
                out[name] = [f"t{int(v)}" for v in rng.integers(0, 4, size=count)]
        return out


def build_engine(
    query: FuzzQuery,
    workers: int = 1,
    fragment_sharing: bool = True,
    verify_plans: bool = False,
    backend: str = "interpreted",
    partitions: int = 1,
    data_dir: Optional[str] = None,
    landmark_spill_mb: Optional[float] = None,
) -> DataCellEngine:
    """A fresh engine holding the query's streams and (loaded) tables.

    ``partitions > 1`` builds a sharded engine and declares every stream
    partitioned by its :attr:`FuzzQuery.partition_key` (the caller is
    responsible for only asking when :attr:`FuzzQuery.partition_ok`).
    ``data_dir`` makes the engine durable (the ``--crash`` axis);
    ``landmark_spill_mb`` arms bounded-memory landmark state so the
    crash/partition legs also exercise the spill paths.
    """
    engine = DataCellEngine(
        verify_plans=verify_plans,
        workers=workers,
        fragment_sharing=fragment_sharing,
        backend=backend,
        partitions=partitions,
        data_dir=data_dir,
        landmark_spill_mb=landmark_spill_mb,
    )
    for name, cols in query.streams.items():
        key = query.partition_key if partitions > 1 else None
        engine.create_stream(name, cols, partition_by=key)
    for name, table in query.tables.items():
        engine.create_table(name, table["columns"])
        if table["rows"]:
            engine.insert(name, [tuple(r) for r in table["rows"]])
    return engine

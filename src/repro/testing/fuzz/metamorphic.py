"""Metamorphic relations over generated queries (paper Figure 3 algebra).

Each relation reruns the *incremental* engine on a transformed input and
demands the output stays equivalent — no second implementation needed,
so these catch bugs even where all four oracle legs share a blind spot:

* **feed-batch-split invariance** — how arrivals are batched into
  ``feed()`` calls must not matter (shakes basket admission, partial
  fragments, the scheduler);
* **intra-basic-window permutation invariance** — permuting tuples
  *within* one basic window (count-based only) leaves every window's
  multiset unchanged, so results must match up to row order and float
  summation noise;
* **basic-window-count invariance** — the same focus window |W| sliced
  by a different |w'| must agree on every window whose span coincides
  (single-stream count-based sliding; paper §3's n = |W|/|w| axis).

Every relation is deterministic given its integer ``seed`` (the
``.repro.json`` replay format stores it).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.testing.fuzz.generator import Feed, FuzzQuery, WindowGeometry
from repro.testing.fuzz.oracle import Divergence, normalize_chunks, run_incremental
from repro.testing.fuzz.reference import rows_equivalent

RELATIONS = ("batch-split", "permutation", "window-count")


def random_chunk_plan(
    rng: np.random.Generator, query: FuzzQuery, feed: Feed
) -> dict[str, list[int]]:
    """A random per-stream split of the feed into 1..5 batches."""
    plan: dict[str, list[int]] = {}
    for name in query.streams:
        total = feed.row_count(name)
        parts = int(rng.integers(1, 6))
        if total <= 1 or parts <= 1:
            plan[name] = [max(total, 1)]
            continue
        cuts = sorted(
            int(v) for v in rng.integers(1, total, size=min(parts - 1, total - 1))
        )
        sizes = []
        prev = 0
        for cut in cuts + [total]:
            if cut > prev:
                sizes.append(cut - prev)
                prev = cut
        plan[name] = normalize_chunks(total, sizes)
    return plan


def check_relation(
    name: str,
    query: FuzzQuery,
    feed: Feed,
    seed: int,
    float_tol: float = 1e-6,
) -> Optional[Divergence]:
    """Run one relation by name; None when it holds or does not apply."""
    relation: Callable = {
        "batch-split": batch_split_invariance,
        "permutation": permutation_invariance,
        "window-count": window_count_invariance,
    }[name]
    return relation(query, feed, seed, float_tol)


def _compare(
    base: list[list[tuple]],
    variant: list[list[tuple]],
    relation: str,
    float_tol: float,
) -> Optional[Divergence]:
    if len(base) != len(variant):
        return Divergence(
            "window-count",
            "incremental",
            relation,
            None,
            f"{len(base)} vs {len(variant)} windows",
        )
    for index, (left, right) in enumerate(zip(base, variant)):
        if not rows_equivalent(left, right, float_tol):
            return Divergence(
                "rows",
                "incremental",
                relation,
                index,
                f"{left[:4]!r} vs {right[:4]!r}",
            )
    return None


# ----------------------------------------------------------------------
def batch_split_invariance(
    query: FuzzQuery, feed: Feed, seed: int, float_tol: float = 1e-6
) -> Optional[Divergence]:
    """Two different feed chunkings must produce identical windows."""
    rng = np.random.default_rng([seed, 1])
    base = run_incremental(query, feed, chunk_plan=None)
    variant = run_incremental(
        query, feed, chunk_plan=random_chunk_plan(rng, query, feed)
    )
    return _compare(base, variant, "batch-split", float_tol)


def permutation_invariance(
    query: FuzzQuery, feed: Feed, seed: int, float_tol: float = 1e-6
) -> Optional[Divergence]:
    """Permuting rows inside each basic window must not change results.

    Only count-based streams are permuted (a time-based stream's window
    membership depends on each tuple's own timestamp); a query with no
    count-based stream is skipped.
    """
    rng = np.random.default_rng([seed, 2])
    permuted = Feed(
        columns={s: dict(cols) for s, cols in feed.columns.items()},
        timestamps=dict(feed.timestamps),
        punctuate=dict(feed.punctuate),
    )
    touched = False
    for name, geometry in query.windows.items():
        if geometry.time_based:
            continue
        total = feed.row_count(name)
        step = geometry.step
        order = np.arange(total)
        for start in range(0, total - total % step, step):
            block = order[start : start + step].copy()
            rng.shuffle(block)
            order[start : start + step] = block
        if np.array_equal(order, np.arange(total)):
            continue
        touched = True
        permuted.columns[name] = {
            col: [values[i] for i in order]
            for col, values in feed.columns[name].items()
        }
    if not touched:
        return None
    base = run_incremental(query, feed)
    variant = run_incremental(query, permuted)
    return _compare(base, variant, "permutation", float_tol)


def window_count_invariance(
    query: FuzzQuery, feed: Feed, seed: int, float_tol: float = 1e-6
) -> Optional[Divergence]:
    """Same |W|, different |w|: coinciding window spans must agree.

    Applies to single-stream count-based sliding/tumbling queries whose
    window size has more than one divisor.  Window ``k`` under step ``w``
    spans ``[k·w, k·w + W)`` — it coincides with window ``k·w / w'``
    under step ``w'`` whenever ``k·w`` is a multiple of ``w'``.
    """
    if len(query.aliases) != 1:
        return None
    alias = query.aliases[0]
    geometry = query.windows[alias]
    if geometry.time_based or geometry.kind == "landmark" or not geometry.size:
        return None
    size = geometry.size
    divisors = [d for d in range(1, size + 1) if size % d == 0 and d != geometry.step]
    if not divisors:
        return None
    rng = np.random.default_rng([seed, 3])
    alternate = int(divisors[int(rng.integers(len(divisors)))])
    kind = "tumbling" if alternate == size else "sliding"
    variant_geometry = WindowGeometry(kind, size, alternate, False)
    base = run_incremental(query, feed)
    variant = run_incremental(
        query, feed, sql=query.render(windows={alias: variant_geometry})
    )
    for k, window in enumerate(base):
        start = k * geometry.step
        if start % alternate != 0:
            continue
        k_prime = start // alternate
        if k_prime >= len(variant):
            break
        if not rows_equivalent(window, variant[k_prime], float_tol):
            return Divergence(
                "rows",
                "incremental",
                "window-count",
                k,
                f"step {geometry.step} window {k} != step {alternate} "
                f"window {k_prime}: {window[:4]!r} vs {variant[k_prime][:4]!r}",
            )
    return None

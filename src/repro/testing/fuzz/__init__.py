"""Generative differential testing for the DataCell engine.

The paper's Figure-3 rewriting must be semantically invisible: every
incremental plan has to produce exactly what full re-evaluation (and any
other faithful executor) produces.  This package hunts violations
mechanically — see the submodule docstrings for the moving parts:

* :mod:`~repro.testing.fuzz.generator` — random valid continuous queries
  over the operator taxonomy, plus matching feeds;
* :mod:`~repro.testing.fuzz.reference` — an independent naive evaluator;
* :mod:`~repro.testing.fuzz.oracle` — the four-way differential runner;
* :mod:`~repro.testing.fuzz.metamorphic` — input-transform invariants;
* :mod:`~repro.testing.fuzz.minimize` — shrinker + ``.repro.json``;
* :mod:`~repro.testing.fuzz.runner` — the ``repro fuzz`` CLI session.
"""

from repro.testing.fuzz.generator import (
    TAXONOMY,
    Feed,
    FuzzQuery,
    QueryGenerator,
    WindowGeometry,
    build_engine,
)
from repro.testing.fuzz.metamorphic import RELATIONS, check_relation
from repro.testing.fuzz.minimize import (
    ReproCase,
    evaluate_case,
    load_case,
    shrink,
    write_case,
)
from repro.testing.fuzz.oracle import (
    Divergence,
    OracleConfig,
    OracleResult,
    run_incremental,
    run_oracle,
)
from repro.testing.fuzz.reference import (
    ReferenceOracle,
    canon_rows,
    check_sorted,
    rows_equivalent,
)
from repro.testing.fuzz.runner import FuzzSession, replay, run_fuzz_cli

__all__ = [
    "TAXONOMY",
    "RELATIONS",
    "Feed",
    "FuzzQuery",
    "QueryGenerator",
    "WindowGeometry",
    "build_engine",
    "check_relation",
    "ReproCase",
    "evaluate_case",
    "load_case",
    "shrink",
    "write_case",
    "Divergence",
    "OracleConfig",
    "OracleResult",
    "run_incremental",
    "run_oracle",
    "ReferenceOracle",
    "canon_rows",
    "check_sorted",
    "rows_equivalent",
    "FuzzSession",
    "replay",
    "run_fuzz_cli",
]

"""Workload generators and the CSV ingestion path."""

from repro.workloads.csvio import read_csv_chunks, read_csv_rows, write_csv
from repro.workloads.generators import (
    JoinWorkload,
    SELECTION_DOMAIN,
    SelectionWorkload,
    grouped_stream,
    join_streams,
    key_domain_for_join_selectivity,
    selection_stream,
    selection_threshold,
)

__all__ = [
    "JoinWorkload",
    "SELECTION_DOMAIN",
    "SelectionWorkload",
    "grouped_stream",
    "join_streams",
    "key_domain_for_join_selectivity",
    "read_csv_chunks",
    "read_csv_rows",
    "selection_stream",
    "selection_threshold",
    "write_csv",
]

"""CSV ingestion — the "complete software stack" path of Figure 9/10.

The paper's SystemX comparison feeds both systems from a CSV file: "data is
read from an input file in chunks.  It is parsed and then it is passed into
the system for query processing."  This module provides that loading path
so the loading-vs-processing breakdown (the paper's final figure) is
measured, not estimated:

* :func:`write_csv` materializes a workload;
* :func:`read_csv_chunks` parses it chunk-wise into columns (DataCell's
  bulk path);
* :func:`read_csv_rows` parses it row-by-row (SystemX's per-tuple path).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.kernel.atoms import Atom, numpy_dtype
from repro.kernel.storage import Schema

_PARSERS = {
    Atom.INT: int,
    Atom.OID: int,
    Atom.TIMESTAMP: int,
    Atom.FLT: float,
    Atom.BIT: lambda s: s == "true",
    Atom.STR: str,
}


def write_csv(
    path: str | Path,
    columns: Mapping[str, Sequence | np.ndarray],
    order: Sequence[str] | None = None,
) -> int:
    """Write columns as a headerless CSV; returns the number of rows."""
    names = list(order) if order is not None else list(columns)
    arrays = [np.asarray(columns[name]) for name in names]
    lengths = {len(a) for a in arrays}
    if len(lengths) != 1:
        raise WorkloadError("ragged columns in write_csv")
    count = lengths.pop()
    with open(path, "w") as out:
        for i in range(count):
            out.write(",".join(str(a[i]) for a in arrays))
            out.write("\n")
    return count


def read_csv_chunks(
    path: str | Path,
    schema: Schema,
    chunk_size: int,
) -> Iterator[dict[str, np.ndarray]]:
    """Parse a CSV into column chunks of ``chunk_size`` rows.

    This is DataCell's loading path: the file is read in chunks, each line
    split and coerced, and the values packed column-wise for a bulk basket
    append.
    """
    if chunk_size <= 0:
        raise WorkloadError("chunk_size must be positive")
    names = list(schema.names)
    parsers = [_PARSERS[schema.atom_of(name)] for name in names]
    dtypes = [numpy_dtype(schema.atom_of(name)) for name in names]
    buffers: list[list] = [[] for __ in names]
    filled = 0
    with open(path) as source:
        for line in source:
            parts = line.rstrip("\n").split(",")
            if len(parts) != len(names):
                raise WorkloadError(f"bad CSV arity in {path}: {line!r}")
            for buffer, parser, part in zip(buffers, parsers, parts):
                buffer.append(parser(part))
            filled += 1
            if filled == chunk_size:
                yield {
                    name: np.asarray(buffer, dtype=dtype)
                    for name, buffer, dtype in zip(names, buffers, dtypes)
                }
                buffers = [[] for __ in names]
                filled = 0
    if filled:
        yield {
            name: np.asarray(buffer, dtype=dtype)
            for name, buffer, dtype in zip(names, buffers, dtypes)
        }


def read_csv_rows(path: str | Path, schema: Schema) -> Iterator[tuple]:
    """Parse a CSV row by row (the tuple-at-a-time ingestion path)."""
    parsers = [_PARSERS[atom] for __, atom in schema.columns]
    expected = len(parsers)
    with open(path) as source:
        for line in source:
            parts = line.rstrip("\n").split(",")
            if len(parts) != expected:
                raise WorkloadError(f"bad CSV arity in {path}: {line!r}")
            yield tuple(parser(part) for parser, part in zip(parsers, parts))

"""Synthetic stream generators for the paper's experiments.

All of §4's workloads are uniform random streams with controlled predicate
selectivity (Q1/Q3: ``x1 > v1``) and join hit rate (Q2: ``s1.x2 = s2.x2``).
These helpers generate columns plus the literal/domain values that achieve
a requested selectivity, so every benchmark states its workload in the
paper's own terms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError

#: Domain of the selection attribute; selectivity s% ⇔ predicate x1 > (1-s)·D
SELECTION_DOMAIN = 1_000


@dataclass(frozen=True)
class SelectionWorkload:
    """A stream for Q1/Q3-style queries: filter on x1, aggregate x2.

    ``threshold`` is the literal v1 such that ``x1 > v1`` matches
    ``selectivity`` of the tuples in expectation.
    """

    x1: np.ndarray
    x2: np.ndarray
    threshold: int
    selectivity: float

    def columns(self) -> dict[str, np.ndarray]:
        return {"x1": self.x1, "x2": self.x2}

    def rows(self):
        """Row-tuple iterator (the SystemX / receptor ingestion path)."""
        return zip(self.x1.tolist(), self.x2.tolist())


def selection_threshold(selectivity: float, domain: int = SELECTION_DOMAIN) -> int:
    """The v1 making ``x1 > v1`` select ``selectivity`` of uniform x1."""
    if not 0.0 < selectivity <= 1.0:
        raise WorkloadError(f"selectivity must be in (0, 1], got {selectivity}")
    return int(round(domain * (1.0 - selectivity))) - 1


def selection_stream(
    count: int,
    selectivity: float,
    seed: int = 0,
    domain: int = SELECTION_DOMAIN,
    value_range: int = 100,
) -> SelectionWorkload:
    """Uniform stream of (x1, x2) with a threshold for the wanted selectivity."""
    if count < 0:
        raise WorkloadError("count must be non-negative")
    rng = np.random.default_rng(seed)
    x1 = rng.integers(0, domain, count, dtype=np.int64)
    x2 = rng.integers(0, value_range, count, dtype=np.int64)
    return SelectionWorkload(x1, x2, selection_threshold(selectivity, domain), selectivity)


@dataclass(frozen=True)
class JoinWorkload:
    """Two streams for Q2-style join queries.

    ``join_selectivity`` is the probability that a random (left, right)
    tuple pair matches on x2; with uniform keys it equals ``1 / domain``.
    """

    left_x1: np.ndarray
    left_x2: np.ndarray
    right_x1: np.ndarray
    right_x2: np.ndarray
    key_domain: int

    @property
    def join_selectivity(self) -> float:
        return 1.0 / self.key_domain

    def left_columns(self) -> dict[str, np.ndarray]:
        return {"x1": self.left_x1, "x2": self.left_x2}

    def right_columns(self) -> dict[str, np.ndarray]:
        return {"x1": self.right_x1, "x2": self.right_x2}

    def left_rows(self):
        return zip(self.left_x1.tolist(), self.left_x2.tolist())

    def right_rows(self):
        return zip(self.right_x1.tolist(), self.right_x2.tolist())


def key_domain_for_join_selectivity(join_selectivity: float) -> int:
    """Uniform-key domain size realizing a per-pair match probability."""
    if not 0.0 < join_selectivity <= 1.0:
        raise WorkloadError(
            f"join selectivity must be in (0, 1], got {join_selectivity}"
        )
    return max(1, int(round(1.0 / join_selectivity)))


def join_streams(
    count: int,
    join_selectivity: float,
    seed: int = 0,
    value_range: int = 100,
) -> JoinWorkload:
    """Two uniform streams whose x2 keys match with the given probability."""
    domain = key_domain_for_join_selectivity(join_selectivity)
    rng = np.random.default_rng(seed)
    return JoinWorkload(
        left_x1=rng.integers(0, value_range, count, dtype=np.int64),
        left_x2=rng.integers(0, domain, count, dtype=np.int64),
        right_x1=rng.integers(0, value_range, count, dtype=np.int64),
        right_x2=rng.integers(0, domain, count, dtype=np.int64),
        key_domain=domain,
    )


def grouped_stream(
    count: int,
    groups: int,
    seed: int = 0,
    value_range: int = 100,
) -> dict[str, np.ndarray]:
    """A stream whose x1 has exactly ``groups`` distinct values (GROUP BY)."""
    if groups <= 0:
        raise WorkloadError("groups must be positive")
    rng = np.random.default_rng(seed)
    return {
        "x1": rng.integers(0, groups, count, dtype=np.int64),
        "x2": rng.integers(0, value_range, count, dtype=np.int64),
    }

"""Exception hierarchy for the repro package.

Every layer raises a subclass of :class:`ReproError`, so callers can catch
one base type at the public-API boundary while tests can assert on the
precise failure class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class KernelError(ReproError):
    """Error inside the column-store kernel (BATs, algebra, execution)."""


class TypeMismatchError(KernelError):
    """An operator received a BAT of an unsupported or unexpected type."""


class AlignmentError(KernelError):
    """Two BATs that must be head-aligned are not."""


class ExecutionError(KernelError):
    """A physical program failed while being interpreted."""


class UnknownInstructionError(ExecutionError):
    """The interpreter met an opcode it has no implementation for."""


class CatalogError(ReproError):
    """Unknown table/stream/column, or a duplicate registration."""


class SqlError(ReproError):
    """Base class for SQL front-end failures."""


class LexerError(SqlError):
    """The SQL lexer met a character sequence it cannot tokenize."""


class ParseError(SqlError):
    """The SQL parser met an unexpected token."""


class BindError(SqlError):
    """Name resolution failed (unknown column/table/function)."""


class PlanError(SqlError):
    """The logical planner cannot translate a bound query."""


class RewriteError(ReproError):
    """The DataCell incremental rewriter cannot transform a plan."""


class UnsupportedQueryError(RewriteError):
    """The continuous query uses a feature the rewriter does not support."""


class AnalysisError(ReproError):
    """Static analysis of a physical program or incremental plan failed."""


class PlanVerificationError(AnalysisError):
    """A rewritten plan violates the incremental-plan invariants."""


class SchedulerError(ReproError):
    """The DataCell scheduler detected an inconsistent factory state."""


class BasketError(ReproError):
    """Illegal basket operation (e.g. appending mismatched columns)."""


class BasketOverflowError(BasketError):
    """An append did not fit into a bounded basket.

    Raised by the ``Fail`` overflow policy as soon as a batch exceeds the
    free room, and by ``Block(timeout)`` when the deadline passes before
    consumers free enough space.  ``requested`` is the batch size that did
    not fit; ``room`` the free space observed when giving up.
    """

    def __init__(self, message: str, requested: int = 0, room: int = 0) -> None:
        super().__init__(message)
        self.requested = requested
        self.room = room


class StreamError(ReproError):
    """Receptor/emitter level failure (bad input rows, closed stream)."""


class DsmsError(ReproError):
    """Error inside the specialized tuple-at-a-time engine (SystemX sim)."""


class WorkloadError(ReproError):
    """Workload generator misconfiguration."""

"""Benchmark drivers shared by the per-figure benchmarks.

Each of the paper's figures measures one of two metrics:

* per-window **response time** — the time from "all tuples of a slide are
  available" to "the window result is produced" (Figures 4–8).  The
  drivers here feed exactly one slide's worth of tuples and time
  ``factory.step()``;
* **total time** — wall time to consume a whole input and produce all
  windows (Figure 9), including parsing/loading.

Every driver works identically for incremental and re-evaluation factories
so DataCell and DataCellR always run the exact same workload.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from repro.core.engine import ContinuousQuery, DataCellEngine
from repro.errors import ReproError
from repro.kernel.execution.profiler import Profiler


@dataclass
class WindowTimings:
    """Per-window measurements of one run."""

    response_seconds: list[float] = field(default_factory=list)
    breakdowns: list[dict[str, float]] = field(default_factory=list)
    result_sizes: list[int] = field(default_factory=list)

    def mean_response(self, skip_first: int = 0) -> float:
        samples = self.response_seconds[skip_first:]
        if not samples:
            return 0.0
        return sum(samples) / len(samples)

    def tag_mean(self, tag: str, skip_first: int = 0) -> float:
        samples = [b.get(tag, 0.0) for b in self.breakdowns[skip_first:]]
        if not samples:
            return 0.0
        return sum(samples) / len(samples)


def _slice_columns(
    columns: Mapping[str, np.ndarray], start: int, stop: int
) -> dict[str, np.ndarray]:
    return {name: values[start:stop] for name, values in columns.items()}


def drive_single(
    engine: DataCellEngine,
    query: ContinuousQuery,
    stream: str,
    columns: Mapping[str, np.ndarray],
    window: int,
    step: int,
    num_windows: int,
    chunk_m: Optional[int] = None,
    chunker=None,
) -> WindowTimings:
    """Feed a single-stream query slide by slide, timing each step.

    ``chunk_m`` forces m-chunk processing; ``chunker`` (an
    :class:`~repro.core.chunking.AdaptiveChunker`) lets the factory adapt
    ``m`` while observing the measured response times.
    """
    total_needed = window + (num_windows - 1) * step
    first = next(iter(columns.values()))
    if len(first) < total_needed:
        raise ReproError(
            f"workload too small: need {total_needed} tuples, have {len(first)}"
        )
    timings = WindowTimings()
    factory = query.factory
    fed = 0
    for index in range(num_windows):
        take = window if index == 0 else step
        engine.feed(stream, columns=_slice_columns(columns, fed, fed + take))
        fed += take
        profiler = Profiler()
        if chunker is not None:
            batch = factory.step_chunked(chunker.current_m, profiler)
        elif chunk_m is not None:
            batch = factory.step_chunked(chunk_m, profiler)
        else:
            batch = factory.step(profiler)
        if batch is None:
            raise ReproError(f"factory not ready at window {index}")
        timings.response_seconds.append(batch.response_seconds)
        timings.breakdowns.append(batch.breakdown)
        timings.result_sizes.append(len(batch))
        if chunker is not None:
            chunker.observe(batch.response_seconds)
    return timings


def drive_landmark(
    engine: DataCellEngine,
    query: ContinuousQuery,
    stream: str,
    columns: Mapping[str, np.ndarray],
    step: int,
    num_windows: int,
) -> WindowTimings:
    """Feed a landmark query slide by slide (window grows each step)."""
    timings = WindowTimings()
    factory = query.factory
    fed = 0
    for __ in range(num_windows):
        engine.feed(stream, columns=_slice_columns(columns, fed, fed + step))
        fed += step
        profiler = Profiler()
        batch = factory.step(profiler)
        if batch is None:
            raise ReproError("landmark factory not ready")
        timings.response_seconds.append(batch.response_seconds)
        timings.breakdowns.append(batch.breakdown)
        timings.result_sizes.append(len(batch))
    return timings


def drive_join(
    engine: DataCellEngine,
    query: ContinuousQuery,
    left_stream: str,
    left_columns: Mapping[str, np.ndarray],
    right_stream: str,
    right_columns: Mapping[str, np.ndarray],
    window: int,
    step: int,
    num_windows: int,
) -> WindowTimings:
    """Feed a two-stream join query slide by slide (equal geometry)."""
    timings = WindowTimings()
    factory = query.factory
    fed = 0
    for index in range(num_windows):
        take = window if index == 0 else step
        engine.feed(left_stream, columns=_slice_columns(left_columns, fed, fed + take))
        engine.feed(right_stream, columns=_slice_columns(right_columns, fed, fed + take))
        fed += take
        profiler = Profiler()
        batch = factory.step(profiler)
        if batch is None:
            raise ReproError(f"join factory not ready at window {index}")
        timings.response_seconds.append(batch.response_seconds)
        timings.breakdowns.append(batch.breakdown)
        timings.result_sizes.append(len(batch))
    return timings


def total_time_datacell(
    engine: DataCellEngine,
    feeds: list[tuple[str, Mapping[str, np.ndarray]]],
    chunk: int = 4096,
) -> float:
    """Total wall time to feed all data chunk-wise and drain the scheduler."""
    start = time.perf_counter()
    offsets = {stream: 0 for stream, __ in feeds}
    remaining = True
    while remaining:
        remaining = False
        for stream, columns in feeds:
            offset = offsets[stream]
            first = next(iter(columns.values()))
            if offset >= len(first):
                continue
            engine.feed(
                stream, columns=_slice_columns(columns, offset, offset + chunk)
            )
            offsets[stream] = offset + chunk
            remaining = True
        engine.run_until_idle()
    engine.run_until_idle()
    return time.perf_counter() - start


def total_time_systemx(systemx, feeds: list[tuple[str, list[tuple]]]) -> float:
    """Total wall time for SystemX to consume interleaved row batches."""
    start = time.perf_counter()
    iters = [(stream, iter(rows)) for stream, rows in feeds]
    live = True
    while live:
        live = False
        for stream, rows in iters:
            pushed = 0
            for row in rows:
                systemx.push(stream, row)
                pushed += 1
                if pushed >= 1024:
                    break
            if pushed:
                live = True
    return time.perf_counter() - start

"""Plain-text reporting for benchmark tables.

Each figure benchmark prints the series the paper plots and appends the
same table to ``benchmarks/results/`` so EXPERIMENTS.md can quote measured
numbers verbatim.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width table with a title line."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = [title, "-" * len(title)]
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) < 0.001:
            return f"{cell:.2e}"
        return f"{cell:.4f}"
    return str(cell)


def report(name: str, title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Print a table and persist it under benchmarks/results/<name>.txt."""
    table = format_table(title, headers, rows)
    print("\n" + table)
    try:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(table + "\n")
    except OSError:
        pass  # reporting must never fail a benchmark
    return table

"""Benchmark drivers and reporting used by benchmarks/."""

from repro.bench.harness import (
    WindowTimings,
    drive_join,
    drive_landmark,
    drive_single,
    total_time_datacell,
    total_time_systemx,
)
from repro.bench.reporting import format_table, report

__all__ = [
    "WindowTimings",
    "drive_join",
    "drive_landmark",
    "drive_single",
    "format_table",
    "report",
    "total_time_datacell",
    "total_time_systemx",
]

"""Bounded-memory landmark spill (DESIGN.md §16).

Three layers of coverage:

* unit tests on :class:`repro.core.landmark.SpillingStore` — fold
  ordering, run consolidation, reset/replace_all hygiene, snapshot
  round-trips — no engine involved;
* engine-level differential tests asserting a spilling query's
  emissions are byte-identical to an unbounded baseline while its
  retained memory stays flat;
* a kill-anywhere crash sweep over the spill hook points
  (``spill.run.torn``, ``spill.manifest_written``, ``spill.pagein``)
  interleaved with the durability hooks, recovering each time and
  asserting exactly-once emissions.

CI runs this file as a dedicated leg: ``pytest -m landmark_spill``.
"""

from __future__ import annotations

import itertools
import os

import numpy as np
import pytest

from repro.core.engine import DataCellEngine
from repro.core.landmark import (
    HOOK_SPILL_MANIFEST_WRITTEN,
    HOOK_SPILL_PAGEIN,
    HOOK_SPILL_RUN_TORN,
    HOOK_SPILL_RUN_WRITTEN,
    MAX_RUNS,
    SPILL_MANIFEST_NAME,
    SpillingStore,
    bundle_bytes,
)
from repro.errors import ReproError
from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT
from repro.testing.faults import CrashPoint, InjectedCrash

pytestmark = pytest.mark.landmark_spill

#: Small enough that a handful of int64 bundles overflows it.
TINY_BUDGET = 64


def bundle(values):
    return {"v": BAT.from_values(values, Atom.INT)}


def concat_fold(bundles):
    tails = [b["v"].tail for b in bundles]
    return {"v": BAT.from_array(np.concatenate(tails), Atom.INT)}


def flatten(store):
    """Every live value in merge order, paging spilled runs back in."""
    out = []
    for __, b in store.live():
        out.extend(int(v) for v in b["v"].tail)
    return out


def disk_files(spill_dir):
    return sorted(os.listdir(spill_dir)) if os.path.isdir(spill_dir) else []


# ----------------------------------------------------------------------
# SpillingStore unit tests
# ----------------------------------------------------------------------
class TestSpillingStore:
    def test_spills_cold_prefix_preserving_merge_order(self, tmp_path):
        store = SpillingStore(str(tmp_path / "q"), TINY_BUDGET, concat_fold)
        expected = []
        for i in range(40):
            chunk = [i * 3, i * 3 + 1, i * 3 + 2]
            store.add(bundle(chunk))
            expected.extend(chunk)
        stats = store.stats()
        assert stats["runs"] > 0 and stats["disk_bytes"] > 0
        assert stats["hot_bytes"] <= TINY_BUDGET + 3 * 8  # one bundle of slack
        before = store.stats()["pageins"]
        assert flatten(store) == expected
        # flatten() paged every live run back in exactly once, uncached.
        assert store.stats()["pageins"] - before == stats["runs"]

    def test_consolidates_runs_at_max(self, tmp_path):
        store = SpillingStore(str(tmp_path / "q"), TINY_BUDGET, concat_fold)
        expected = []
        for i in range(30 * MAX_RUNS):
            store.add(bundle([i]))
            expected.append(i)
        assert store.stats()["runs"] <= MAX_RUNS
        # File count stays bounded too: live runs + the manifest.
        files = disk_files(store.spill_dir)
        assert len(files) <= MAX_RUNS + 1, files
        assert SPILL_MANIFEST_NAME in files
        assert flatten(store) == expected

    def test_replace_all_collapses_disk_runs(self, tmp_path):
        store = SpillingStore(str(tmp_path / "q"), TINY_BUDGET, concat_fold)
        for i in range(40):
            seq = store.add(bundle([i]))
        assert store.stats()["runs"] > 0
        store.replace_all(bundle([999]))
        assert store.newest_seq == seq
        assert flatten(store) == [999]
        stats = store.stats()
        assert stats["runs"] == 0 and stats["disk_bytes"] == 0
        assert disk_files(store.spill_dir) in ([], [SPILL_MANIFEST_NAME])

    def test_reset_drops_disk_and_restarts_seqs(self, tmp_path):
        store = SpillingStore(str(tmp_path / "q"), TINY_BUDGET, concat_fold)
        for i in range(40):
            store.add(bundle([i]))
        first_files = disk_files(store.spill_dir)
        store.reset()
        assert len(store) == 0 and store.newest_seq is None
        assert store.stats()["runs"] == 0 and store.stats()["disk_bytes"] == 0
        assert store.add(bundle([7])) == 0  # seq numbering restarts
        for i in range(40):
            store.add(bundle([i]))
        # Run file names stay monotonic across the reset: a pre-reset
        # name is never reused for post-reset content.
        reused = set(first_files) & set(disk_files(store.spill_dir))
        assert reused <= {SPILL_MANIFEST_NAME}, reused

    def test_snapshot_restore_round_trip(self, tmp_path):
        store = SpillingStore(str(tmp_path / "q"), TINY_BUDGET, concat_fold)
        expected = []
        for i in range(40):
            store.add(bundle([i]))
            expected.append(i)
        state = store.snapshot_state()
        assert "spill" in state

        clone = SpillingStore(store.spill_dir, TINY_BUDGET, concat_fold)
        clone.restore_state(state)
        assert flatten(clone) == expected
        # Restoring again after dropping a run from the manifest prunes
        # the now-unreferenced file instead of leaking it.
        orphan = os.path.join(store.spill_dir, "run-99999999.bin")
        with open(orphan, "wb") as fh:
            fh.write(b"orphan")
        leftover = os.path.join(store.spill_dir, "run-00000005.bin.tmp")
        with open(leftover, "wb") as fh:
            fh.write(b"half")
        clone.restore_state(state)
        files = disk_files(store.spill_dir)
        assert "run-99999999.bin" not in files
        assert not any(f.endswith(".tmp") for f in files)
        assert flatten(clone) == expected

    def test_restore_tolerates_plain_partial_store_snapshot(self, tmp_path):
        """Snapshots taken before spilling existed have no "spill" key."""
        store = SpillingStore(str(tmp_path / "q"), TINY_BUDGET, concat_fold)
        plain = {
            "next_seq": 2,
            "bundles": [[0, bundle([1, 2])], [1, bundle([3])]],
        }
        store.restore_state(plain)
        assert flatten(store) == [1, 2, 3]
        assert store.stats()["runs"] == 0

    def test_rejects_missing_run_file_on_page_in(self, tmp_path):
        store = SpillingStore(str(tmp_path / "q"), TINY_BUDGET, concat_fold)
        for i in range(40):
            store.add(bundle([i]))
        victim = [f for f in disk_files(store.spill_dir) if f.endswith(".bin")][0]
        os.unlink(os.path.join(store.spill_dir, victim))
        with pytest.raises(ReproError):
            store.live()


# ----------------------------------------------------------------------
# engine-level differential tests
# ----------------------------------------------------------------------
SELECT_ONLY = "SELECT x1 FROM s [LANDMARK SLIDE 8] WHERE x1 > 10"


def _feed_rounds(engine, rounds=6, per_round=32, seed=0):
    rng = np.random.default_rng(seed)
    for __ in range(rounds):
        engine.feed(
            "s",
            columns={"x1": rng.integers(0, 100, per_round).astype(np.int64)},
        )
        engine.run_until_idle()
        yield


class TestEngineSpill:
    def _engine(self, **kwargs):
        engine = DataCellEngine(**kwargs)
        engine.create_stream("s", [("x1", "int")])
        return engine

    def test_emissions_byte_identical_to_unbounded_baseline(self):
        results = {}
        for label, spill in (("base", None), ("spill", 0.0001)):
            engine = self._engine(landmark_spill_mb=spill)
            try:
                handle = engine.submit(SELECT_ONLY, name="q")
                for __ in _feed_rounds(engine):
                    pass
                results[label] = handle.result_rows()
                if spill is not None:
                    stats = engine.landmark_spill_stats()["q"]
                    assert stats["runs"] > 0 and stats["pageins"] > 0
            finally:
                engine.close()
        assert results["base"] == results["spill"]

    def test_retained_memory_flat_while_baseline_grows(self):
        """The headline property: hot bytes plateau under the budget
        while the unbounded store's footprint grows with every round."""
        budget = 4096
        spill_hot, base_bytes = [], []
        base = self._engine()
        spill = self._engine(landmark_spill_mb=budget / 2**20)
        try:
            bh = base.submit(SELECT_ONLY, name="q")
            spill.submit(SELECT_ONLY, name="q")
            rounds = zip(_feed_rounds(base), _feed_rounds(spill))
            for __ in rounds:
                store = bh.factory._store
                base_bytes.append(
                    sum(bundle_bytes(b) for __, b in store.live())
                )
                spill_hot.append(
                    spill.landmark_spill_stats()["q"]["hot_bytes"]
                )
        finally:
            base.close()
            spill.close()
        assert base_bytes[-1] > base_bytes[0]  # unbounded: grows
        slack = 8 * 32  # at most one freshly-added bundle over budget
        assert max(spill_hot) <= budget + slack, spill_hot

    def test_compacting_aggregate_unaffected_by_spill(self):
        sql = "SELECT max(x1), count(*) FROM s [LANDMARK SLIDE 8]"
        results = {}
        for label, spill in (("base", None), ("spill", 0.0001)):
            engine = self._engine(landmark_spill_mb=spill)
            try:
                handle = engine.submit(sql, name="q")
                for __ in _feed_rounds(engine, seed=3):
                    pass
                results[label] = handle.result_rows()
            finally:
                engine.close()
        assert results["base"] == results["spill"]

    def test_reset_landmark_drops_spilled_history(self):
        engine = self._engine(landmark_spill_mb=0.0001)
        try:
            handle = engine.submit(SELECT_ONLY, name="q")
            rng = np.random.default_rng(5)
            engine.feed(
                "s", columns={"x1": rng.integers(0, 100, 64).astype(np.int64)}
            )
            engine.run_until_idle()
            assert engine.landmark_spill_stats()["q"]["runs"] > 0
            engine.reset_landmark("q")
            stats = engine.landmark_spill_stats()["q"]
            assert stats["runs"] == 0 and stats["disk_bytes"] == 0
            before = len(handle.results())
            post = rng.integers(0, 100, 16).astype(np.int64)
            engine.feed("s", columns={"x1": post})
            engine.run_until_idle()
            windows = [batch.rows() for batch in handle.results()][before:]
            # Post-reset windows cover only post-reset tuples.
            assert windows[-1] == [(int(v),) for v in post if v > 10]
        finally:
            engine.close()

    def test_spill_knob_validation(self):
        with pytest.raises(ReproError):
            DataCellEngine(landmark_spill_mb=0)
        with pytest.raises(ReproError):
            DataCellEngine(landmark_spill_mb=-1)

    def test_ephemeral_spill_root_removed_on_close(self):
        engine = self._engine(landmark_spill_mb=0.0001)
        engine.submit(SELECT_ONLY, name="q")
        rng = np.random.default_rng(6)
        engine.feed(
            "s", columns={"x1": rng.integers(0, 100, 64).astype(np.int64)}
        )
        engine.run_until_idle()
        root = engine._spill_root
        assert root is not None and os.path.isdir(root)
        engine.close()
        assert not os.path.exists(root)

    def test_remove_query_drops_spill_dir(self, tmp_path):
        engine = DataCellEngine(
            data_dir=str(tmp_path / "dd"), landmark_spill_mb=0.0001
        )
        try:
            engine.create_stream("s", [("x1", "int")])
            engine.submit(SELECT_ONLY, name="q")
            rng = np.random.default_rng(7)
            engine.feed(
                "s", columns={"x1": rng.integers(0, 100, 64).astype(np.int64)}
            )
            engine.run_until_idle()
            spill_dir = os.path.join(str(tmp_path / "dd"), "spill", "q")
            assert os.path.isdir(spill_dir) and disk_files(spill_dir)
            engine.remove("q")
            assert not os.path.exists(spill_dir)
        finally:
            engine.close()

    def test_metrics_expose_spill_families(self):
        from repro.obs.metrics import collect_metrics, render_prometheus

        engine = self._engine(landmark_spill_mb=0.0001)
        try:
            engine.submit(SELECT_ONLY, name="q")
            rng = np.random.default_rng(8)
            engine.feed(
                "s", columns={"x1": rng.integers(0, 100, 64).astype(np.int64)}
            )
            engine.run_until_idle()
            metrics = collect_metrics(engine)
            assert metrics["landmark_spill"]["q"]["runs"] > 0
            text = render_prometheus(metrics, obs=engine.obs)
            for family in (
                "repro_landmark_spill_runs_total",
                "repro_landmark_spill_bytes_total",
                "repro_landmark_spill_pageins_total",
                "repro_landmark_spill_pagein_bytes_total",
                "repro_landmark_spill_hot_bytes",
                "repro_landmark_spill_budget_bytes",
                "repro_landmark_spill_disk_bytes",
                "repro_landmark_spill_run_files",
            ):
                assert family in text, family
        finally:
            engine.close()


# ----------------------------------------------------------------------
# kill-anywhere sweep over the spill hook points
# ----------------------------------------------------------------------
SWEEP_SQL = "SELECT v FROM s [LANDMARK SLIDE 4] WHERE v >= 0"
SWEEP_VALUES = np.arange(36, dtype=np.int64)
SWEEP_CHUNK = 9
SWEEP_SPILL_MB = 0.0001


def _sweep_drive(engine) -> None:
    total = len(SWEEP_VALUES)
    round_no = 0
    while True:
        lo = engine._stream_fed.get("s", 0)
        if lo >= total:
            break
        hi = min(lo + SWEEP_CHUNK, total)
        engine.feed("s", columns={"v": SWEEP_VALUES[lo:hi]})
        engine.run_until_idle()
        if round_no == 1:
            engine.checkpoint()  # snapshot references live spill runs
        round_no += 1
    engine.run_until_idle()


def _sweep_expected(tmp_path):
    engine = DataCellEngine(
        data_dir=str(tmp_path / "ref"), landmark_spill_mb=SWEEP_SPILL_MB
    )
    try:
        engine.create_stream("s", [("v", "int")])
        handle = engine.submit(SWEEP_SQL, name="q")
        _sweep_drive(engine)
        assert engine.landmark_spill_stats()["q"]["runs"] > 0
        return [batch.rows() for batch in handle.results()]
    finally:
        engine.close()


def test_hook_sequence_covers_spill_points(tmp_path):
    """The sweep below only means something if spill hooks actually
    appear in the ordinal sequence — record one clean run and check."""
    seen = []
    engine = DataCellEngine(
        data_dir=str(tmp_path / "dd"), landmark_spill_mb=SWEEP_SPILL_MB
    )
    try:
        engine.create_stream("s", [("v", "int")])
        engine.submit(SWEEP_SQL, name="q")
        engine.install_fault_hook(seen.append)
        _sweep_drive(engine)
    finally:
        engine.close()
    for point in (
        HOOK_SPILL_RUN_TORN,
        HOOK_SPILL_RUN_WRITTEN,
        HOOK_SPILL_MANIFEST_WRITTEN,
        HOOK_SPILL_PAGEIN,
    ):
        assert point in seen, (point, sorted(set(seen)))


def test_kill_anywhere_with_spill(tmp_path):
    """Crash at every hook ordinal — durability *and* spill points —
    restore, finish the workload, and demand exactly-once emissions."""
    expected = _sweep_expected(tmp_path)
    assert len(expected) == len(SWEEP_VALUES) // 4

    fired_points = 0
    for at in itertools.count():
        data_dir = tmp_path / f"dd-{at}"
        engine = DataCellEngine(
            data_dir=str(data_dir), landmark_spill_mb=SWEEP_SPILL_MB
        )
        engine.create_stream("s", [("v", "int")])
        handle = engine.submit(SWEEP_SQL, name="q")
        crash = CrashPoint(at)
        engine.install_fault_hook(crash)
        try:
            try:
                _sweep_drive(engine)
            except InjectedCrash:
                engine.abandon()  # die without flushing, like SIGKILL
                engine = DataCellEngine.restore(str(data_dir))
                engine.run_until_idle()
                handle = engine.query("q")
                _sweep_drive(engine)
            got = [batch.rows() for batch in handle.results()]
        finally:
            engine.close()
        assert got == expected, f"ordinal {at}"
        if not crash.fired:
            break
        fired_points += 1
    assert fired_points >= 20, fired_points

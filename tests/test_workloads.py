"""Tests for workload generators and the CSV ingestion path."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.kernel.atoms import Atom
from repro.kernel.storage import Schema
from repro.workloads import (
    grouped_stream,
    join_streams,
    key_domain_for_join_selectivity,
    read_csv_chunks,
    read_csv_rows,
    selection_stream,
    selection_threshold,
    write_csv,
)


class TestSelectionWorkload:
    def test_threshold_hits_requested_selectivity(self):
        workload = selection_stream(200_000, 0.2, seed=1)
        hit = float(np.mean(workload.x1 > workload.threshold))
        assert hit == pytest.approx(0.2, abs=0.01)

    @pytest.mark.parametrize("sel", [0.1, 0.5, 0.9])
    def test_various_selectivities(self, sel):
        workload = selection_stream(100_000, sel, seed=2)
        hit = float(np.mean(workload.x1 > workload.threshold))
        assert hit == pytest.approx(sel, abs=0.02)

    def test_full_selectivity(self):
        assert selection_threshold(1.0) == -1  # x1 > -1 matches everything

    def test_bad_selectivity(self):
        with pytest.raises(WorkloadError):
            selection_threshold(0.0)
        with pytest.raises(WorkloadError):
            selection_stream(10, 1.5)

    def test_columns_and_rows_agree(self):
        workload = selection_stream(10, 0.5, seed=3)
        rows = list(workload.rows())
        assert len(rows) == 10
        assert rows[0] == (int(workload.x1[0]), int(workload.x2[0]))

    def test_negative_count(self):
        with pytest.raises(WorkloadError):
            selection_stream(-1, 0.5)


class TestJoinWorkload:
    def test_key_domain(self):
        assert key_domain_for_join_selectivity(1e-4) == 10_000
        with pytest.raises(WorkloadError):
            key_domain_for_join_selectivity(0)

    def test_join_selectivity_realized(self):
        workload = join_streams(2_000, 1e-2, seed=4)
        matches = 0
        right = {}
        for key in workload.right_x2.tolist():
            right[key] = right.get(key, 0) + 1
        for key in workload.left_x2.tolist():
            matches += right.get(key, 0)
        observed = matches / (2_000 * 2_000)
        assert observed == pytest.approx(1e-2, rel=0.2)


class TestGroupedStream:
    def test_group_count(self):
        cols = grouped_stream(10_000, groups=7, seed=5)
        assert len(np.unique(cols["x1"])) == 7

    def test_bad_groups(self):
        with pytest.raises(WorkloadError):
            grouped_stream(10, groups=0)


class TestCsvIo:
    SCHEMA = Schema.of(("x1", Atom.INT), ("x2", Atom.FLT), ("tag", Atom.STR))

    def test_roundtrip_chunks(self, tmp_path):
        path = tmp_path / "data.csv"
        columns = {
            "x1": np.array([1, 2, 3], dtype=np.int64),
            "x2": np.array([0.5, 1.5, 2.5]),
            "tag": np.array(["a", "b", "c"], dtype=object),
        }
        assert write_csv(path, columns, order=["x1", "x2", "tag"]) == 3
        chunks = list(read_csv_chunks(path, self.SCHEMA, chunk_size=2))
        assert len(chunks) == 2
        assert chunks[0]["x1"].tolist() == [1, 2]
        assert chunks[1]["x2"].tolist() == [2.5]
        assert chunks[0]["tag"].tolist() == ["a", "b"]

    def test_roundtrip_rows(self, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(path, {"x1": [7], "x2": [0.25], "tag": ["z"]}, order=["x1", "x2", "tag"])
        rows = list(read_csv_rows(path, self.SCHEMA))
        assert rows == [(7, 0.25, "z")]

    def test_bad_arity_detected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,2\n")
        with pytest.raises(WorkloadError):
            list(read_csv_rows(path, self.SCHEMA))

    def test_ragged_write_rejected(self, tmp_path):
        with pytest.raises(WorkloadError):
            write_csv(tmp_path / "x.csv", {"a": [1], "b": [1, 2]})

    def test_chunk_size_validated(self, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(path, {"x1": [1], "x2": [1.0], "tag": ["a"]}, order=["x1", "x2", "tag"])
        with pytest.raises(WorkloadError):
            list(read_csv_chunks(path, self.SCHEMA, chunk_size=0))

    def test_csv_feeds_datacell(self, tmp_path):
        """End-to-end: CSV -> chunks -> baskets -> windows."""
        from repro import DataCellEngine

        path = tmp_path / "stream.csv"
        rng = np.random.default_rng(6)
        write_csv(
            path,
            {"x1": rng.integers(0, 10, 50), "x2": rng.integers(0, 10, 50)},
            order=["x1", "x2"],
        )
        engine = DataCellEngine()
        engine.create_stream("s", [("x1", "int"), ("x2", "int")])
        query = engine.submit("SELECT count(*) FROM s [RANGE 20 SLIDE 10]")
        schema = engine.catalog.stream("s").schema
        for chunk in read_csv_chunks(path, schema, chunk_size=16):
            engine.feed("s", columns=chunk)
        engine.run_until_idle()
        assert len(query.results()) == 4
        assert all(batch.rows() == [(20,)] for batch in query.results())

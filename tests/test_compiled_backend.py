"""Differential tests: compiled backend vs the interpreter.

Every opcode in ``known_opcodes()`` runs through both backends on the
same inputs and must produce equal results — the table below *is* the
compiler's conformance suite, and a coverage assertion fails the moment
a new opcode lands without a differential case.  On top of the per-opcode
table: fusion/folding behaviour, interpreter fallback (with the
``compiled_fallbacks`` counter), error-message parity, profiling
semantics, and whole-engine equivalence across query shapes.
"""

import numpy as np
import pytest

from repro import DataCellEngine
from repro.errors import ExecutionError, ReproError, UnknownInstructionError
from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT
from repro.kernel.execution import (
    BACKENDS,
    CompiledBackend,
    Interpreter,
    InterpreterBackend,
    Lit,
    Profiler,
    Program,
    ProgramCompiler,
    Ref,
    TAG_MERGE,
    compile_program,
    kernel_registry,
    known_opcodes,
    make_backend,
)
from repro.kernel.execution.compiled import FUSED_OPCODE
from repro.kernel.execution.profiler import COUNTER_COMPILED_FALLBACKS

from conftest import int_bat


def bit_bat(values, hseq: int = 0) -> BAT:
    return BAT(np.asarray(values, dtype=bool), Atom.BIT, hseq)


def oid_bat(values) -> BAT:
    return BAT(np.asarray(values, dtype=np.int64), Atom.OID)


INTS = [4, 1, 3, 1, 9]
FLTS = [0.5, 2.25, -1.0]

#: opcode -> list of (inputs, args, n_outs) differential cases.  Inputs
#: are the program's input slots; args mix Ref (into those slots) and Lit.
OPCODE_CASES = {
    "algebra.select": [
        ({"b": int_bat(INTS)}, [Ref("b"), Lit(1), Lit(4)], 1),
        (
            {"b": int_bat(INTS), "c": oid_bat([0, 2, 4])},
            [Ref("b"), Lit(1), Lit(9), Lit(True), Lit(False), Ref("c")],
            1,
        ),
    ],
    "algebra.thetaselect": [
        ({"b": int_bat(INTS)}, [Ref("b"), Lit(2), Lit(">")], 1),
    ],
    "algebra.mask_select": [
        ({"m": bit_bat([1, 0, 1, 1, 0])}, [Ref("m")], 1),
    ],
    "cand.intersect": [
        ({"l": oid_bat([0, 2, 4]), "r": oid_bat([2, 3, 4])}, [Ref("l"), Ref("r")], 1),
    ],
    "cand.union": [
        ({"l": oid_bat([0, 2]), "r": oid_bat([1, 2])}, [Ref("l"), Ref("r")], 1),
    ],
    "cand.difference": [
        ({"l": oid_bat([0, 2, 4]), "r": oid_bat([2])}, [Ref("l"), Ref("r")], 1),
    ],
    "algebra.projection": [
        ({"c": oid_bat([0, 3]), "b": int_bat(INTS)}, [Ref("c"), Ref("b")], 1),
    ],
    "bat.mirror": [({"b": int_bat(INTS)}, [Ref("b")], 1)],
    "bat.materialize": [({"b": int_bat(INTS)}, [Ref("b")], 1)],
    "bat.slice": [({"b": int_bat(INTS)}, [Ref("b"), Lit(1), Lit(3)], 1)],
    "bat.count": [
        ({"b": int_bat(INTS)}, [Ref("b")], 1),
        ({"b": BAT.empty(Atom.INT)}, [Ref("b")], 1),
    ],
    "bat.id": [({"b": int_bat(INTS)}, [Ref("b")], 1)],
    "algebra.join": [
        ({"l": int_bat([1, 2, 3]), "r": int_bat([3, 1, 1])}, [Ref("l"), Ref("r")], 2),
    ],
    "algebra.semijoin": [
        ({"l": int_bat([1, 2, 3]), "r": int_bat([3, 1])}, [Ref("l"), Ref("r")], 1),
    ],
    "algebra.antijoin": [
        ({"l": int_bat([1, 2, 3]), "r": int_bat([3, 1])}, [Ref("l"), Ref("r")], 1),
    ],
    "group.group": [
        ({"k": int_bat([2, 1, 2, 1])}, [Ref("k")], 3),
        (
            {"k": int_bat([2, 1, 2, 1]), "k2": int_bat([0, 0, 1, 0])},
            [Ref("k"), Ref("k2")],
            3,
        ),
    ],
    "group.distinct": [({"b": int_bat(INTS)}, [Ref("b")], 1)],
    "aggr.sum": [
        ({"b": int_bat(INTS)}, [Ref("b")], 1),
        ({"b": BAT.empty(Atom.FLT)}, [Ref("b")], 1),
    ],
    "aggr.count": [({"b": int_bat(INTS)}, [Ref("b")], 1)],
    "aggr.min": [({"b": int_bat(INTS)}, [Ref("b")], 1)],
    "aggr.max": [({"b": int_bat(INTS)}, [Ref("b")], 1)],
    "aggr.avg": [({"b": BAT.from_values(FLTS, Atom.FLT)}, [Ref("b")], 1)],
    "aggr.subsum": [
        (
            {"v": int_bat([1, 2, 3, 4]), "g": oid_bat([0, 1, 0, 1])},
            [Ref("v"), Ref("g"), Lit(2)],
            1,
        ),
    ],
    "aggr.subcount": [
        (
            {"v": int_bat([1, 2, 3, 4]), "g": oid_bat([0, 1, 0, 1])},
            [Ref("v"), Ref("g"), Lit(2)],
            1,
        ),
    ],
    "aggr.submin": [
        (
            {"v": int_bat([1, 2, 3, 4]), "g": oid_bat([0, 1, 0, 1])},
            [Ref("v"), Ref("g"), Lit(2)],
            1,
        ),
    ],
    "aggr.submax": [
        (
            {"v": int_bat([1, 2, 3, 4]), "g": oid_bat([0, 1, 0, 1])},
            [Ref("v"), Ref("g"), Lit(2)],
            1,
        ),
    ],
    "aggr.subavg": [
        (
            {"v": int_bat([1, 2, 3, 4]), "g": oid_bat([0, 1, 0, 1])},
            [Ref("v"), Ref("g"), Lit(2)],
            1,
        ),
    ],
    "aggr.align": [
        ({"a": int_bat([7])}, [Ref("a")], 1),
        ({"a": int_bat([7]), "c": int_bat([3])}, [Ref("a"), Ref("c")], 2),
        ({"a": BAT.empty(Atom.INT), "c": int_bat([3])}, [Ref("a"), Ref("c")], 2),
    ],
    "mat.pack": [
        ({"a": int_bat([1, 2]), "b": int_bat([3])}, [Ref("a"), Ref("b")], 1),
    ],
    "bat.append": [
        ({"a": int_bat([1, 2]), "b": int_bat([3])}, [Ref("a"), Ref("b")], 1),
    ],
    "bat.unique": [({"b": int_bat(INTS)}, [Ref("b")], 1)],
    "algebra.sort": [
        ({"b": int_bat(INTS)}, [Ref("b")], 2),
        ({"b": int_bat(INTS)}, [Ref("b"), Lit(True)], 2),
    ],
    "algebra.sortrefine": [
        (
            {"o": int_bat([1, 1, 2]), "b": int_bat([5, 3, 4])},
            [Ref("o"), Ref("b")],
            1,
        ),
    ],
    "algebra.firstn": [({"b": int_bat(INTS)}, [Ref("b"), Lit(2)], 1)],
    "calc.div": [({"b": int_bat(INTS)}, [Ref("b"), Lit(2)], 1)],
    "calc./": [({"b": int_bat(INTS)}, [Ref("b"), Lit(2)], 1)],
    "calc.and": [
        ({"l": bit_bat([1, 0, 1]), "r": bit_bat([1, 1, 0])}, [Ref("l"), Ref("r")], 1),
    ],
    "calc.or": [
        ({"l": bit_bat([1, 0, 0]), "r": bit_bat([0, 0, 1])}, [Ref("l"), Ref("r")], 1),
    ],
    "calc.not": [({"m": bit_bat([1, 0, 1])}, [Ref("m")], 1)],
    "calc.neg": [({"b": int_bat(INTS)}, [Ref("b")], 1)],
    "calc.const": [({}, [Lit(5), Lit(Atom.INT), Lit(4)], 1)],
    "calc.+": [
        ({"b": int_bat(INTS)}, [Ref("b"), Lit(3)], 1),
        ({"b": int_bat(INTS), "c": int_bat([1, 1, 1, 1, 1])}, [Ref("b"), Ref("c")], 1),
    ],
    "calc.-": [({"b": int_bat(INTS)}, [Ref("b"), Lit(1)], 1)],
    "calc.*": [({"b": int_bat(INTS)}, [Ref("b"), Lit(2)], 1)],
    "calc.%": [({"b": int_bat(INTS)}, [Ref("b"), Lit(3)], 1)],
    "calc.==": [({"b": int_bat(INTS)}, [Ref("b"), Lit(1)], 1)],
    "calc.!=": [({"b": int_bat(INTS)}, [Ref("b"), Lit(1)], 1)],
    "calc.<": [({"b": int_bat(INTS)}, [Ref("b"), Lit(3)], 1)],
    "calc.<=": [({"b": int_bat(INTS)}, [Ref("b"), Lit(3)], 1)],
    "calc.>": [({"b": int_bat(INTS)}, [Ref("b"), Lit(3)], 1)],
    "calc.>=": [({"b": int_bat(INTS)}, [Ref("b"), Lit(3)], 1)],
}


def assert_values_equal(left, right, label=""):
    """Structural equality for interpreter/compiler result values."""
    assert type(left) is type(right), f"{label}: {type(left)} vs {type(right)}"
    if isinstance(left, BAT):
        assert left.atom == right.atom, label
        assert left.hseq == right.hseq, label
        assert left.to_list() == right.to_list(), label
    else:
        assert left == right, label


def run_both(program, inputs):
    expected = Interpreter().run(program, dict(inputs))
    actual = compile_program(program).run(dict(inputs))
    assert expected.keys() == actual.keys()
    for name in expected:
        assert_values_equal(expected[name], actual[name], name)
    return actual


ALL_CASES = [
    pytest.param(opcode, case, id=f"{opcode}-{index}")
    for opcode, cases in sorted(OPCODE_CASES.items())
    for index, case in enumerate(cases)
]


class TestOpcodeDifferential:
    def test_table_covers_every_opcode(self):
        assert set(OPCODE_CASES) == set(known_opcodes())

    def test_compiler_interpreter_opcode_parity(self):
        assert ProgramCompiler().known_opcodes() == known_opcodes()
        assert set(kernel_registry()) == set(known_opcodes())

    @pytest.mark.parametrize("opcode,case", ALL_CASES)
    def test_differential(self, opcode, case):
        inputs, args, n_outs = case
        program = Program(
            inputs=tuple(inputs), outputs=tuple(f"o{i}" for i in range(n_outs))
        )
        program.emit(opcode, args, [f"o{i}" for i in range(n_outs)])
        run_both(program, inputs)


class TestFusionAndFolding:
    def _chain(self):
        program = Program(inputs=("x",), outputs=("out",))
        program.emit("calc.+", [Ref("x"), Lit(10)], ["a"])
        program.emit("calc.*", [Ref("a"), Lit(2)], ["b"])
        program.emit("calc.-", [Ref("b"), Lit(1)], ["out"])
        return program

    def test_calc_chain_fuses(self):
        program = self._chain()
        compiled = compile_program(program)
        assert compiled.fused_count == 2
        run_both(program, {"x": int_bat(INTS)})

    def test_program_output_never_fused(self):
        # `a` is a program output: its producer must stay materialized.
        program = Program(inputs=("x",), outputs=("a", "out"))
        program.emit("calc.+", [Ref("x"), Lit(10)], ["a"])
        program.emit("calc.*", [Ref("a"), Lit(2)], ["out"])
        assert compile_program(program).fused_count == 0
        run_both(program, {"x": int_bat(INTS)})

    def test_multi_use_never_fused(self):
        program = Program(inputs=("x",), outputs=("out",))
        program.emit("calc.+", [Ref("x"), Lit(1)], ["a"])
        program.emit("calc.+", [Ref("a"), Ref("a")], ["out"])
        assert compile_program(program).fused_count == 0
        run_both(program, {"x": int_bat(INTS)})

    def test_fusion_follows_dataflow_across_interleaved_instructions(self):
        # `a` feeds a calc op two instructions later; fusion is dataflow-
        # based, so the interleaved bat.count does not force `a` to
        # materialize.  `m` feeds a non-calc consumer and must be a BAT.
        program = Program(inputs=("x",), outputs=("out",))
        program.emit("calc.+", [Ref("x"), Lit(1)], ["a"])
        program.emit("bat.count", [Ref("x")], ["n"])
        program.emit("calc.*", [Ref("a"), Lit(2)], ["m"])
        program.emit("calc.const", [Ref("n"), Lit(Atom.INT), Lit(1)], ["c"])
        program.emit("bat.append", [Ref("m"), Ref("c")], ["out"])
        assert compile_program(program).fused_count == 1
        run_both(program, {"x": int_bat(INTS)})

    def test_all_literal_instruction_folds(self):
        program = Program(inputs=(), outputs=("k",))
        program.emit("calc.const", [Lit(5), Lit(Atom.INT), Lit(3)], ["k"])
        compiled = compile_program(program)
        assert compiled.folded_count == 1
        assert compiled.run({})["k"].to_list() == [5, 5, 5]

    def test_profile_mode_disables_fusion_and_folding(self):
        program = self._chain()
        compiled = compile_program(program, profile=True)
        assert compiled.fused_count == 0
        assert compiled.folded_count == 0


class TestSpecializedFusion:
    """The non-calc fusions: mask positions, projection, aggregates."""

    def _mask_chain(self):
        program = Program(inputs=("x", "y"), outputs=("sel",))
        program.emit("calc.*", [Ref("x"), Lit(2)], ["a"])
        program.emit("calc.>", [Ref("a"), Lit(4)], ["m"])
        program.emit("algebra.mask_select", [Ref("m")], ["mask"])
        program.emit("algebra.projection", [Ref("mask"), Ref("y")], ["sel"])
        return program

    def test_mask_and_projection_fuse(self):
        program = self._mask_chain()
        compiled = compile_program(program)
        assert compiled.fused_count == 2  # `a` and `m` stay chain state
        assert "_x_fnz" in compiled.source
        assert "_x_prj" in compiled.source
        run_both(program, {"x": int_bat(INTS), "y": int_bat([10, 20, 30, 40, 50])})

    def test_projection_guard_falls_back_to_kernel(self):
        # `y` is longer than the mask's source, so the aligned fast path
        # must not trigger; the kernel path accepts the in-range oids.
        program = self._mask_chain()
        run_both(program, {"x": int_bat(INTS), "y": int_bat(list(range(100, 109)))})

    def test_projection_out_of_range_error_parity(self):
        # `y`'s head range excludes oid 0, which the mask selects: both
        # backends must raise the same per-instruction error.
        program = self._mask_chain()
        inputs = {"x": int_bat(INTS), "y": int_bat([1, 2, 3, 4, 5], hseq=3)}
        with pytest.raises(ExecutionError) as interp_err:
            Interpreter().run(program, dict(inputs))
        with pytest.raises(ExecutionError) as compiled_err:
            compile_program(program).run(dict(inputs))
        assert str(interp_err.value) == str(compiled_err.value)

    def test_mask_slot_redefinition_invalidates_positions(self):
        # The mask_select output slot is legally redefined (here by a
        # second, unfused mask_select); the later projection must read the
        # *redefined* candidate list, not the stale fused positions.
        program = Program(inputs=("x", "m2", "src"), outputs=("out",))
        program.emit("calc.<", [Ref("x"), Lit(3)], ["m1"])
        program.emit("algebra.mask_select", [Ref("m1")], ["cand"])
        program.emit("algebra.mask_select", [Ref("m2")], ["cand"])
        program.emit("algebra.projection", [Ref("cand"), Ref("src")], ["out"])
        run_both(
            program,
            {
                "x": int_bat([1, 2, 3, 4, 5]),
                "m2": bit_bat([0, 1, 0, 1, 0]),
                "src": int_bat([10, 20, 30, 40, 50]),
            },
        )

    def test_mask_slot_redefined_by_non_mask_write(self):
        # Redefinition through an arbitrary opcode (not another
        # mask_select) must equally drop the fused-positions registration.
        program = Program(inputs=("x", "c2", "src"), outputs=("out",))
        program.emit("calc.<", [Ref("x"), Lit(3)], ["m1"])
        program.emit("algebra.mask_select", [Ref("m1")], ["cand"])
        program.emit("bat.materialize", [Ref("c2")], ["cand"])
        program.emit("algebra.projection", [Ref("cand"), Ref("src")], ["out"])
        run_both(
            program,
            {
                "x": int_bat([1, 2, 3, 4, 5]),
                "c2": oid_bat([2, 4]),
                "src": int_bat([10, 20, 30, 40, 50]),
            },
        )

    def test_self_redefining_projection_stays_correct(self):
        # ``cand = projection(cand, src)`` reads the slot it redefines:
        # the specialization is skipped, the kernel path must be taken.
        program = Program(inputs=("x", "src"), outputs=("cand",))
        program.emit("calc.<", [Ref("x"), Lit(3)], ["m1"])
        program.emit("algebra.mask_select", [Ref("m1")], ["cand"])
        program.emit("algebra.projection", [Ref("cand"), Ref("src")], ["cand"])
        run_both(
            program,
            {
                "x": int_bat([1, 2, 3, 4, 5]),
                "src": int_bat([10, 20, 30, 40, 50]),
            },
        )

    @pytest.mark.parametrize(
        "opcode", ["aggr.sum", "aggr.count", "aggr.min", "aggr.max", "aggr.avg"]
    )
    def test_aggregate_terminal_fuses(self, opcode):
        program = Program(inputs=("x",), outputs=("out",))
        program.emit("calc.*", [Ref("x"), Lit(3)], ["a"])
        program.emit(opcode, [Ref("a")], ["out"])
        compiled = compile_program(program)
        assert compiled.fused_count == 1
        run_both(program, {"x": int_bat(INTS)})
        run_both(program, {"x": int_bat([])})
        run_both(program, {"x": BAT(np.asarray(FLTS), Atom.FLT)})


class TestCompileErrors:
    def test_unknown_opcode_raises_at_compile(self):
        program = Program(inputs=("x",), outputs=("y",))
        program.emit("no.such.op", [Ref("x")], ["y"])
        with pytest.raises(UnknownInstructionError):
            compile_program(program)

    def test_invalid_program_rejected(self):
        program = Program(inputs=(), outputs=())
        program.emit("bat.id", [Ref("ghost")], ["y"])
        with pytest.raises(ExecutionError):
            compile_program(program)

    def test_missing_input_message_parity(self):
        program = Program(inputs=("x",), outputs=())
        with pytest.raises(ExecutionError) as interp_err:
            Interpreter().run(program, {})
        with pytest.raises(ExecutionError) as compiled_err:
            compile_program(program).run({})
        assert str(interp_err.value) == str(compiled_err.value)

    def test_runtime_error_message_parity(self):
        # logic_not on a non-BIT BAT fails inside the kernel function;
        # the compiled path re-runs through the interpreter to reproduce
        # the canonical per-instruction error text.
        program = Program(inputs=("x",), outputs=("y",))
        program.emit("calc.not", [Ref("x")], ["y"])
        inputs = {"x": int_bat(INTS)}
        with pytest.raises(ExecutionError) as interp_err:
            Interpreter().run(program, dict(inputs))
        with pytest.raises(ExecutionError) as compiled_err:
            compile_program(program).run(dict(inputs))
        assert str(interp_err.value) == str(compiled_err.value)


class TestFallback:
    def _ext_program(self):
        program = Program(inputs=("x",), outputs=("y",))
        program.emit("ext.double", [Ref("x")], ["y"])
        return program

    def _ext_interpreter(self):
        registry = dict(kernel_registry())
        registry["ext.double"] = lambda b: BAT.from_array(b.tail * 2, b.atom)
        return Interpreter(registry)

    def test_extension_opcode_falls_back_to_interpreter(self):
        backend = CompiledBackend(interpreter=self._ext_interpreter())
        profiler = Profiler()
        result = backend.run(self._ext_program(), {"x": int_bat([1, 2])}, profiler)
        assert result["y"].to_list() == [2, 4]
        assert profiler.counter(COUNTER_COMPILED_FALLBACKS) == 1

    def test_fallback_counted_per_run(self):
        backend = CompiledBackend(interpreter=self._ext_interpreter())
        profiler = Profiler()
        program = self._ext_program()
        for _ in range(3):
            backend.run(program, {"x": int_bat([1])}, profiler)
        assert profiler.counter(COUNTER_COMPILED_FALLBACKS) == 3

    def test_builtin_program_does_not_fall_back(self):
        backend = CompiledBackend()
        profiler = Profiler()
        program = Program(inputs=("x",), outputs=("y",))
        program.emit("calc.+", [Ref("x"), Lit(1)], ["y"])
        backend.run(program, {"x": int_bat([1])}, profiler)
        assert profiler.counter(COUNTER_COMPILED_FALLBACKS) == 0

    def test_unknown_to_both_still_raises(self):
        backend = CompiledBackend()
        program = Program(inputs=(), outputs=())
        program.emit("no.such.op", [], ["y"])
        with pytest.raises(UnknownInstructionError):
            backend.run(program, {})

    def test_compilation_memoized(self):
        backend = CompiledBackend()
        program = Program(inputs=("x",), outputs=("y",))
        program.emit("bat.id", [Ref("x")], ["y"])
        first = backend.compiled_for(program)
        assert first is not None
        assert backend.compiled_for(program) is first

    def test_fallback_error_recorded_on_cache_entry(self):
        backend = CompiledBackend(interpreter=self._ext_interpreter())
        program = self._ext_program()
        assert backend.compiled_for(program) is None
        assert isinstance(backend.fallback_error(program), UnknownInstructionError)

    def test_fallback_error_none_for_compiled_program(self):
        backend = CompiledBackend()
        program = Program(inputs=("x",), outputs=("y",))
        program.emit("bat.id", [Ref("x")], ["y"])
        assert backend.compiled_for(program) is not None
        assert backend.fallback_error(program) is None
        # Never-seen programs report no error either.
        unseen = Program(inputs=("x",), outputs=("y",))
        unseen.emit("bat.id", [Ref("x")], ["y"])
        assert backend.fallback_error(unseen) is None


class TestProfilingSemantics:
    def _program(self):
        program = Program(inputs=("x",), outputs=("out",))
        program.emit("algebra.thetaselect", [Ref("x"), Lit(2), Lit(">")], ["c"])
        program.emit("algebra.projection", [Ref("c"), Ref("x")], ["p"])
        program.emit("aggr.sum", [Ref("p")], ["out"], tag=TAG_MERGE)
        return program

    def test_tag_breakdown_preserved(self):
        program = self._program()
        inputs = {"x": int_bat(INTS)}
        interp_prof, compiled_prof = Profiler(), Profiler()
        Interpreter().run(program, dict(inputs), interp_prof)
        compile_program(program).run(dict(inputs), compiled_prof)
        assert set(interp_prof.tags()) == set(compiled_prof.tags())
        assert all(seconds > 0 for seconds in compiled_prof.tags().values())
        # One fused span per tag segment, not one record per instruction.
        assert compiled_prof.calls == {"compiled.fused": 2}

    def test_profile_true_matches_interpreter_calls(self):
        program = self._program()
        inputs = {"x": int_bat(INTS)}
        interp_prof, compiled_prof = Profiler(), Profiler()
        Interpreter().run(program, dict(inputs), interp_prof)
        compile_program(program, profile=True).run(dict(inputs), compiled_prof)
        assert dict(interp_prof.calls) == dict(compiled_prof.calls)
        assert set(interp_prof.by_opcode) == set(compiled_prof.by_opcode)

    def test_error_path_does_not_double_count(self):
        # The traced variant records its first (main-tag) segment before
        # the merge-tag instruction fails; the interpreter re-run must not
        # stack on top of that partial recording — profiler state is
        # rolled back first, so per-opcode calls match a pure interpreter
        # error run and no fused pseudo-opcode survives.
        program = Program(inputs=("x",), outputs=("y",))
        program.emit("calc.+", [Ref("x"), Lit(1)], ["a"])
        program.emit("calc.not", [Ref("a")], ["y"], tag=TAG_MERGE)
        inputs = {"x": int_bat(INTS)}
        interp_prof, compiled_prof = Profiler(), Profiler()
        with pytest.raises(ExecutionError):
            Interpreter().run(program, dict(inputs), interp_prof)
        with pytest.raises(ExecutionError):
            compile_program(program).run(dict(inputs), compiled_prof)
        assert FUSED_OPCODE not in compiled_prof.calls
        assert dict(compiled_prof.calls) == dict(interp_prof.calls)

    def test_error_path_rollback_preserves_prior_records(self):
        # Rollback restores the snapshot, not an empty profiler: records
        # that predate the failing run must survive.
        program = Program(inputs=("x",), outputs=("y",))
        program.emit("calc.+", [Ref("x"), Lit(1)], ["a"])
        program.emit("calc.not", [Ref("a")], ["y"], tag=TAG_MERGE)
        profiler = Profiler()
        profiler.record("main", "warmup.op", 1.0)
        profiler.count("firings", 2)
        with pytest.raises(ExecutionError):
            compile_program(program).run({"x": int_bat(INTS)}, profiler)
        assert profiler.calls["warmup.op"] == 1
        assert profiler.counter("firings") == 2

    def test_no_profiler_runs_fast_variant(self):
        program = self._program()
        result = compile_program(program).run({"x": int_bat(INTS)})
        assert result["out"].to_list() == [sum(v for v in INTS if v > 2)]


class TestBackendSeam:
    def test_make_backend_names(self):
        assert BACKENDS == ("interpreted", "compiled")
        assert isinstance(make_backend("interpreted"), InterpreterBackend)
        assert isinstance(make_backend("compiled"), CompiledBackend)
        with pytest.raises(ValueError):
            make_backend("jit")

    def test_engine_rejects_unknown_backend(self):
        with pytest.raises(ReproError):
            DataCellEngine(backend="jit")


QUERY_SHAPES = [
    "SELECT count(*) AS n FROM s [RANGE 4 SLIDE 2]",
    "SELECT x2, sum(x1) AS total FROM s [RANGE 6 SLIDE 3] GROUP BY x2",
    "SELECT max(x1) AS top FROM s [RANGE 4 SLIDE 2] WHERE x1 > 2",
    "SELECT avg(x1) AS mean FROM s [RANGE 5 SLIDE 5] ORDER BY mean",
]


def _drive(backend, sql, mode="incremental"):
    engine = DataCellEngine(backend=backend)
    engine.create_stream("s", [("x1", "int"), ("x2", "int")])
    try:
        handle = engine.submit(sql, mode=mode)
        rng = np.random.default_rng(7)
        for _ in range(4):
            rows = [
                (int(a), int(b))
                for a, b in zip(
                    rng.integers(0, 10, size=5), rng.integers(0, 3, size=5)
                )
            ]
            engine.feed("s", rows)
            engine.run_until_idle()
        return handle.result_rows()
    finally:
        engine.close()


class TestEngineEquivalence:
    @pytest.mark.parametrize("sql", QUERY_SHAPES)
    def test_incremental_results_identical(self, sql):
        assert _drive("compiled", sql) == _drive("interpreted", sql)

    def test_reeval_results_identical(self):
        sql = QUERY_SHAPES[1]
        assert _drive("compiled", sql, mode="reeval") == _drive(
            "interpreted", sql, mode="reeval"
        )

    def test_engine_records_backend(self):
        engine = DataCellEngine(backend="compiled")
        try:
            assert engine.backend == "compiled"
        finally:
            engine.close()

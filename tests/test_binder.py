"""Unit tests for name resolution and type checking."""

import pytest

from repro.errors import BindError
from repro.kernel.atoms import Atom
from repro.sql.binder import bind
from repro.sql.parser import parse, parse_expression


def bound(catalog, sql):
    query = parse(sql)
    return query, bind(query, catalog)


class TestResolution:
    def test_bare_column(self, catalog):
        query, binding = bound(catalog, "SELECT x1 FROM s")
        column = binding.resolve(parse_expression("x1"))
        assert column.alias == "s"
        assert column.column == "x1"
        assert column.atom == Atom.INT
        assert column.is_stream

    def test_qualified_column(self, catalog):
        __, binding = bound(catalog, "SELECT s1.x1 FROM s s1, s2 WHERE s1.x2 = s2.x2")
        column = binding.resolve(parse_expression("s1.x1"))
        assert column.alias == "s1"
        assert column.relation == "s"

    def test_ambiguous_bare_name(self, catalog):
        __, binding = bound(catalog, "SELECT s1.x1 FROM s s1, s2 WHERE s1.x2 = s2.x2")
        with pytest.raises(BindError, match="ambiguous"):
            binding.resolve(parse_expression("x1"))

    def test_unknown_column(self, catalog):
        __, binding = bound(catalog, "SELECT x1 FROM s")
        with pytest.raises(BindError):
            binding.resolve(parse_expression("nope"))

    def test_unknown_alias(self, catalog):
        __, binding = bound(catalog, "SELECT x1 FROM s")
        with pytest.raises(BindError):
            binding.resolve(parse_expression("zz.x1"))

    def test_unknown_relation(self, catalog):
        with pytest.raises(Exception):
            bound(catalog, "SELECT a FROM missing_relation")

    def test_duplicate_alias(self, catalog):
        with pytest.raises(BindError):
            bound(catalog, "SELECT x1 FROM s a, s2 a WHERE a.x1 = a.x1")

    def test_aliases_in(self, catalog):
        __, binding = bound(catalog, "SELECT s1.x1 FROM s s1, s2 WHERE s1.x2 = s2.x2")
        expr = parse_expression("s1.x1 + s2.x1")
        assert binding.aliases_in(expr) == {"s1", "s2"}


class TestTyping:
    def test_arith_promotion(self, catalog):
        __, binding = bound(catalog, "SELECT k FROM t")
        assert binding.atom_of(parse_expression("k + 1")) == Atom.INT
        assert binding.atom_of(parse_expression("k + 0.5")) == Atom.FLT
        assert binding.atom_of(parse_expression("v * 2")) == Atom.FLT

    def test_division_is_float(self, catalog):
        __, binding = bound(catalog, "SELECT k FROM t")
        assert binding.atom_of(parse_expression("k / 2")) == Atom.FLT

    def test_comparison_is_bit(self, catalog):
        __, binding = bound(catalog, "SELECT k FROM t")
        assert binding.atom_of(parse_expression("k > 3")) == Atom.BIT

    def test_string_comparison(self, catalog):
        __, binding = bound(catalog, "SELECT tag FROM t")
        assert binding.atom_of(parse_expression("tag = 'x'")) == Atom.BIT
        with pytest.raises(BindError):
            binding.atom_of(parse_expression("tag > 3"))

    def test_boolean_ops_require_bits(self, catalog):
        __, binding = bound(catalog, "SELECT k FROM t")
        assert binding.atom_of(parse_expression("k > 1 and k < 5")) == Atom.BIT
        with pytest.raises(BindError):
            binding.atom_of(parse_expression("k and k"))

    def test_aggregate_types(self, catalog):
        __, binding = bound(catalog, "SELECT k FROM t")
        assert binding.atom_of(parse_expression("sum(k)")) == Atom.INT
        assert binding.atom_of(parse_expression("sum(v)")) == Atom.FLT
        assert binding.atom_of(parse_expression("count(*)")) == Atom.INT
        assert binding.atom_of(parse_expression("avg(k)")) == Atom.FLT
        assert binding.atom_of(parse_expression("min(tag)")) == Atom.STR

    def test_sum_of_string_rejected(self, catalog):
        __, binding = bound(catalog, "SELECT tag FROM t")
        with pytest.raises(BindError):
            binding.atom_of(parse_expression("sum(tag)"))

    def test_unknown_function(self, catalog):
        __, binding = bound(catalog, "SELECT k FROM t")
        with pytest.raises(BindError):
            binding.atom_of(parse_expression("median(k)"))

    def test_nested_aggregates_rejected(self, catalog):
        __, binding = bound(catalog, "SELECT k FROM t")
        with pytest.raises(BindError):
            binding.atom_of(parse_expression("sum(max(k))"))

    def test_star_only_for_count(self, catalog):
        __, binding = bound(catalog, "SELECT k FROM t")
        with pytest.raises(BindError):
            binding.atom_of(parse_expression("sum(*)"))


class TestQueryValidation:
    def test_where_must_be_boolean(self, catalog):
        with pytest.raises(BindError):
            bound(catalog, "SELECT x1 FROM s WHERE x1 + 1")

    def test_aggregate_in_where_rejected(self, catalog):
        with pytest.raises(BindError):
            bound(catalog, "SELECT x1 FROM s WHERE sum(x1) > 3")

    def test_aggregate_in_group_by_rejected(self, catalog):
        with pytest.raises(BindError):
            bound(catalog, "SELECT x1 FROM s GROUP BY sum(x1)")

    def test_having_must_be_boolean(self, catalog):
        with pytest.raises(BindError):
            bound(catalog, "SELECT x1, sum(x2) FROM s GROUP BY x1 HAVING sum(x2)")

"""Fault-injection harness + RetryingEmitter failure paths.

The harness must be deterministic (same seed → same failures) or the
stress tests built on it would flake; the RetryingEmitter must shield the
scheduler from a crashing sink and park undeliverable batches in the
dead-letter collector.
"""

import time

import numpy as np
import pytest

from repro import DataCellEngine, RetryingEmitter
from repro.core.emitter import CollectingEmitter
from repro.core.factory import ResultBatch
from repro.errors import ReproError
from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT
from repro.kernel.execution.profiler import (
    COUNTER_DEAD_LETTERS,
    COUNTER_EMIT_RETRIES,
    Profiler,
)
from repro.testing.faults import (
    FlakyEmitter,
    InjectedFault,
    SlowFactory,
    StallingSource,
)


def batch(value: int, index: int = 1) -> ResultBatch:
    return ResultBatch(["a"], {"a": BAT.from_values([value], Atom.INT)}, index, 0.0)


class TestStallingSource:
    def test_rows_pass_through_unchanged(self):
        source = StallingSource([(i, i) for i in range(10)], every=100, seconds=0.0)
        assert list(source) == [(i, i) for i in range(10)]
        assert source.stalls == 0

    def test_stalls_at_fixed_ordinals(self):
        source = StallingSource([(i,) for i in range(6)], every=2, seconds=0.0)
        list(source)
        assert source.stalls == 3

    def test_stall_actually_sleeps(self):
        source = StallingSource([(1,), (2,)], every=1, seconds=0.02)
        start = time.monotonic()
        list(source)
        assert time.monotonic() - start >= 0.04

    def test_bad_every_rejected(self):
        with pytest.raises(ReproError):
            StallingSource([], every=0, seconds=0.1)


class TestFlakyEmitter:
    def test_explicit_failure_schedule(self):
        emitter = FlakyEmitter(failures=[1])
        emitter("f", batch(1))  # delivery 0: fine
        with pytest.raises(InjectedFault):
            emitter("f", batch(2))  # delivery 1: scheduled failure
        emitter("f", batch(3))  # delivery 2: fine
        assert emitter.raised == 1
        assert emitter.delivered == 2

    def test_seeded_rate_is_deterministic(self):
        def run():
            emitter = FlakyEmitter(rate=0.5, seed=11)
            outcomes = []
            for i in range(20):
                try:
                    emitter("f", batch(i))
                    outcomes.append(True)
                except InjectedFault:
                    outcomes.append(False)
            return outcomes

        assert run() == run()
        assert False in run() and True in run()

    def test_fail_streak_allows_recovery_on_retry(self):
        emitter = FlakyEmitter(failures=[0], fail_streak=2)
        one = batch(1)
        with pytest.raises(InjectedFault):
            emitter("f", one)
        with pytest.raises(InjectedFault):
            emitter("f", one)  # same batch: attempt 2, still in the streak
        emitter("f", one)  # attempt 3 succeeds
        assert emitter.delivered == 1

    def test_inner_sink_receives_successes(self):
        inner = CollectingEmitter()
        emitter = FlakyEmitter(inner=inner, failures=[0])
        with pytest.raises(InjectedFault):
            emitter("f", batch(1))
        emitter("f", batch(2))
        assert len(inner.batches()) == 1


class TestSlowFactory:
    def test_delegates_and_delays(self):
        engine = DataCellEngine()
        engine.create_stream("s", [("x1", "int"), ("x2", "int")])
        query = engine.submit(
            "SELECT x1, count(*) FROM s [RANGE 4 SLIDE 2] GROUP BY x1"
        )
        slow = SlowFactory(query.factory, delay=0.01, every=1)
        engine.feed("s", columns={"x1": np.arange(4) % 2, "x2": np.arange(4)})
        assert slow.ready()
        start = time.monotonic()
        produced = slow.step()
        assert time.monotonic() - start >= 0.01
        assert produced is not None
        assert slow.slow_steps == 1
        assert slow.window_index == 1  # attribute delegation


class TestRetryingEmitter:
    def test_transient_failure_recovers(self):
        inner = CollectingEmitter()
        flaky = FlakyEmitter(inner=inner, failures=[0], fail_streak=2)
        profiler = Profiler()
        retrying = RetryingEmitter(
            flaky, max_retries=3, backoff=0.001, profiler=profiler
        )
        retrying("f", batch(1))
        assert len(inner.batches()) == 1
        assert retrying.retries == 2
        assert retrying.dead_lettered == 0
        assert profiler.counter(COUNTER_EMIT_RETRIES) == 2

    def test_exhausted_retries_dead_letter_the_batch(self):
        flaky = FlakyEmitter(failures=[0], fail_streak=100)
        profiler = Profiler()
        retrying = RetryingEmitter(
            flaky, max_retries=2, backoff=0.001, profiler=profiler
        )
        doomed = batch(7, index=3)
        retrying("f", doomed)  # must NOT raise
        letters = retrying.dead_letters()
        assert letters == [doomed]
        assert retrying.dead_lettered == 1
        assert isinstance(retrying.last_error, InjectedFault)
        assert profiler.counter(COUNTER_DEAD_LETTERS) == 1

    def test_custom_dead_letter_sink(self):
        parked = []
        retrying = RetryingEmitter(
            FlakyEmitter(rate=1.0),
            max_retries=0,
            backoff=0.0,
            dead_letter=lambda name, b: parked.append((name, b)),
        )
        retrying("f", batch(1))
        assert len(parked) == 1
        with pytest.raises(TypeError):
            retrying.dead_letters()

    def test_downstream_failure_does_not_kill_the_factory(self):
        """End to end: a permanently broken sink never breaks the query."""
        engine = DataCellEngine()
        engine.create_stream("s", [("x1", "int"), ("x2", "int")])
        query = engine.submit(
            "SELECT x1, count(*) FROM s [RANGE 10 SLIDE 5] GROUP BY x1"
        )
        broken = FlakyEmitter(rate=1.0, fail_streak=10**6)  # never recovers
        retrying = RetryingEmitter(broken, max_retries=1, backoff=0.0)
        engine.scheduler.add_sink(query.name, retrying)
        rng = np.random.default_rng(2)
        engine.feed(
            "s", columns={"x1": rng.integers(0, 3, 30), "x2": rng.integers(0, 9, 30)}
        )
        fired = engine.run_until_idle()  # would raise without the wrapper
        assert fired > 0
        assert len(query.results()) == fired  # collecting emitter unaffected
        assert retrying.dead_lettered == fired

"""Key-partitioned multi-process execution (DESIGN.md §14).

Three layers of coverage:

* pure-function unit tests for the routing/planning layer
  (:mod:`repro.core.partition`) — no processes involved;
* a collector unit test exercising out-of-order partition completion
  on :class:`repro.core.shard.PartitionedQuery` directly;
* differential property tests that run the same query and feed through
  a plain ``P=1`` engine and a partitioned engine with real shard
  worker processes, asserting window-for-window equal results.

The multi-process tests carry the ``partition`` marker so CI can run
them in a dedicated job (``pytest -m partition``) that also asserts
``/dev/shm`` holds no leaked segments afterwards.
"""

import glob
import math
import os

import numpy as np
import pytest

from repro import DataCellEngine
from repro.core.partition import (
    VIRTUAL_TICK_US,
    PartitionSpec,
    partition_hash,
    plan_partition_query,
    route_columns,
    validate_partition_key,
)
from repro.core.shard import PartitionedQuery
from repro.errors import ReproError, UnsupportedQueryError
from repro.kernel.atoms import Atom
from repro.kernel.storage import Schema

pytestmark = pytest.mark.partition

SCHEMA = Schema.of(("k", Atom.INT), ("v", Atom.INT), ("x", Atom.FLT))
SPEC = PartitionSpec(stream="s", key="k", partitions=3)


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
class TestRouting:
    def test_int_hash_deterministic(self):
        values = np.array([0, 1, -7, 2**40, -(2**40)], dtype=np.int64)
        first = partition_hash(values, Atom.INT, 4)
        second = partition_hash(values, Atom.INT, 4)
        np.testing.assert_array_equal(first, second)
        assert first.dtype == np.int64
        assert ((first >= 0) & (first < 4)).all()

    def test_str_hash_deterministic(self):
        values = np.array(["a", "b", "", "naïve", "a"], dtype=object)
        ids = partition_hash(values, Atom.STR, 3)
        assert ids[0] == ids[4]  # equal keys, equal partition
        assert ((ids >= 0) & (ids < 3)).all()

    def test_route_columns_disjoint_and_complete(self):
        rng = np.random.default_rng(0)
        columns = {"k": rng.integers(0, 50, size=200), "v": np.arange(200)}
        routes = route_columns(columns, "k", Atom.INT, 4)
        assert len(routes) == 4
        combined = np.concatenate(routes)
        assert len(combined) == 200
        assert len(np.unique(combined)) == 200  # disjoint
        # Equal keys land on the same partition.
        for p, idx in enumerate(routes):
            other = set(np.concatenate([routes[q] for q in range(4) if q != p]))
            for key in np.unique(columns["k"][idx]):
                assert not any(
                    columns["k"][i] == key for i in other
                ), f"key {key} split across partitions"

    def test_validate_partition_key(self):
        assert validate_partition_key(SCHEMA, "k", "s") == Atom.INT
        with pytest.raises(ReproError):
            validate_partition_key(SCHEMA, "x", "s")  # float key
        with pytest.raises(ReproError):
            validate_partition_key(SCHEMA, "ghost", "s")


# ----------------------------------------------------------------------
# planning: the merge taxonomy
# ----------------------------------------------------------------------
class TestShardPlan:
    def test_group_by_key_is_merge_free(self):
        plan = plan_partition_query(
            "SELECT k, sum(v) AS total FROM s [RANGE 4 SLIDE 4] GROUP BY k",
            SCHEMA,
            SPEC,
        )
        assert plan.route == "concat"
        assert plan.merge is None
        assert "__shard" not in plan.partition_sql("s")
        assert "__shard_q" in plan.partition_sql("__shard_q")

    def test_global_aggregate_re_aggregates(self):
        plan = plan_partition_query(
            "SELECT avg(x) AS m FROM s [RANGE 4 SLIDE 4]", SCHEMA, SPEC
        )
        assert plan.route == "re-aggregate"
        assert plan.merge is not None
        assert plan.merge.pn_column is not None
        # avg decomposes into sum+count partials re-combined at merge.
        psql = plan.partition_sql("__shard_q")
        assert "sum(x)" in psql and "count(x)" in psql
        assert "__pn" in psql
        msql = plan.merge_sql()
        assert msql is not None and "__pn > 0" in msql

    def test_order_by_routes_merge_sort(self):
        plan = plan_partition_query(
            "SELECT k, v FROM s [RANGE 4 SLIDE 4] ORDER BY v DESC LIMIT 5",
            SCHEMA,
            SPEC,
        )
        assert plan.route == "merge-sort"
        assert plan.merge is not None

    def test_unsupported_shapes(self):
        with pytest.raises(UnsupportedQueryError):
            plan_partition_query(
                "SELECT DISTINCT v FROM s [RANGE 4 SLIDE 4] LIMIT 3",
                SCHEMA,
                SPEC,
            )

    def test_landmark_routes(self):
        # Landmark partitions since the spill/partition rework: cumulative
        # per-partition slices merge window-for-window like sliding ones.
        plan = plan_partition_query(
            "SELECT k, v FROM s [LANDMARK SLIDE 4]", SCHEMA, SPEC
        )
        assert plan.route == "concat"
        assert plan.flavor == "virtual"
        window = plan.partition_query.tables[0].window
        assert window.kind == "landmark" and window.size is None
        assert window.time_based and window.step == 4 * VIRTUAL_TICK_US
        plan = plan_partition_query(
            "SELECT sum(v) AS t FROM s [LANDMARK SLIDE 4]", SCHEMA, SPEC
        )
        assert plan.route == "re-aggregate"
        plan = plan_partition_query(
            "SELECT k, sum(v) AS t FROM s [LANDMARK SLIDE 4] GROUP BY k",
            SCHEMA,
            SPEC,
        )
        # Grouped by the key: partitions own disjoint groups, merge-free.
        assert plan.route == "concat" and plan.merge is None


# ----------------------------------------------------------------------
# the collector: out-of-order partition completion
# ----------------------------------------------------------------------
class TestCollector:
    def _query(self):
        plan = plan_partition_query(
            "SELECT k, v FROM s [RANGE 2 SLIDE 2]", SCHEMA, SPEC
        )
        return PartitionedQuery(
            name="q",
            sql="",
            mode="incremental",
            plan=plan,
            output_names=["k", "v"],
            output_atoms=[Atom.INT, Atom.INT],
            partitions=3,
            # Plain selections ship the hidden __seq arrival offset so the
            # coordinator can restore arrival order before dropping it.
            partial_names=["k", "v", "__seq"],
            partial_atoms=[Atom.INT, Atom.INT, Atom.INT],
        )

    def test_out_of_order_offers_merge_in_window_order(self):
        q = self._query()
        col = lambda *vals: {  # noqa: E731 - terser than a def here
            "k": np.asarray(vals, dtype=np.int64),
            "v": np.asarray(vals, dtype=np.int64),
            "__seq": np.asarray(vals, dtype=np.int64),
        }
        # Window 2 completes on partitions 0/1 before window 1 does;
        # nothing may merge until window 1 has all three partitions.
        q.offer(0, 2, 0.0, col(20))
        q.offer(1, 2, 0.0, col(21))
        q.offer(0, 1, 0.0, col(10))
        q.offer(1, 1, 0.0, col(11))
        assert q.drain(None) == 0
        assert q.lag() == 2  # partition 2 has reported nothing yet
        q.offer(2, 1, 0.0, col(12))
        assert q.drain(None) == 1
        q.offer(2, 2, 0.0, col(22))
        assert q.drain(None) == 1
        windows = q.result_rows()
        assert [sorted(w) for w in windows] == [
            [(10, 10), (11, 11), (12, 12)],
            [(20, 20), (21, 21), (22, 22)],
        ]
        assert q.lag() == 0

    def test_response_time_is_worst_partition_plus_merge(self):
        q = self._query()
        empty = {
            "k": np.asarray([], dtype=np.int64),
            "v": np.asarray([], dtype=np.int64),
            "__seq": np.asarray([], dtype=np.int64),
        }
        q.offer(0, 1, 0.25, dict(empty))
        q.offer(1, 1, 0.75, dict(empty))
        q.offer(2, 1, 0.10, dict(empty))
        q.drain(None)
        batch = q.last()
        assert batch.response_seconds >= 0.75
        assert batch.breakdown["partition_max"] == 0.75


# ----------------------------------------------------------------------
# differential: partitioned vs P=1
# ----------------------------------------------------------------------
def _rows_equal(left, right):
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        for x, y in zip(a, b):
            if isinstance(x, float) or isinstance(y, float):
                fx, fy = float(x), float(y)
                if math.isnan(fx) and math.isnan(fy):
                    continue
                if not math.isclose(fx, fy, rel_tol=1e-9, abs_tol=1e-9):
                    return False
            elif x != y:
                return False
    return True


def assert_windows_match(reference, sharded, ordered):
    assert len(reference) == len(sharded), (
        f"window count {len(reference)} vs {len(sharded)}"
    )
    for i, (ref, got) in enumerate(zip(reference, sharded)):
        if not ordered:
            ref, got = sorted(ref), sorted(got)
        assert _rows_equal(ref, got), f"window {i}: {ref} vs {got}"


def run_differential(
    sql,
    rows,
    partitions=2,
    mode="incremental",
    backend="interpreted",
    timestamps=None,
    chunks=None,
    ordered=False,
    key="k",
    schema=(("k", "int"), ("v", "int"), ("x", "float"), ("tag", "str")),
    submit_after=0,
):
    """Feed the same rows through P=1 and P=N; compare result windows."""

    def run(partitions):
        engine = DataCellEngine(partitions=partitions, backend=backend)
        try:
            engine.create_stream(
                "s", list(schema),
                partition_by=key if partitions > 1 else None,
            )
            pending = list(rows)
            fed = 0
            query = None
            if not submit_after:
                query = engine.submit(sql, mode=mode)
            for size in chunks or [len(pending)]:
                batch, pending = pending[:size], pending[size:]
                ts = None
                if timestamps is not None:
                    ts = timestamps[fed:fed + len(batch)]
                if batch or ts:
                    engine.feed("s", rows=batch, timestamps=ts)
                fed += len(batch)
                if query is None and fed >= submit_after:
                    query = engine.submit(sql, mode=mode)
                engine.run_until_idle()
            if query is None:
                query = engine.submit(sql, mode=mode)
            engine.run_until_idle()
            return query.result_rows()
        finally:
            engine.close()

    assert_windows_match(run(1), run(partitions), ordered)


def make_rows(n, seed=0, keys=6):
    rng = np.random.default_rng(seed)
    return [
        (
            int(rng.integers(0, keys)),
            int(rng.integers(0, 100)),
            float(rng.uniform(-10, 10)),
            str(rng.choice(["red", "green", "blue"])),
        )
        for __ in range(n)
    ]


class TestDifferentialCountWindows:
    @pytest.mark.parametrize("mode", ["incremental", "reeval"])
    def test_group_by_key_merge_free(self, mode):
        run_differential(
            "SELECT k, sum(v) AS total, count(*) AS n "
            "FROM s [RANGE 8 SLIDE 8] GROUP BY k",
            make_rows(48),
            mode=mode,
        )

    @pytest.mark.parametrize("mode", ["incremental", "reeval"])
    def test_global_aggregates(self, mode):
        run_differential(
            "SELECT sum(x) AS s, count(*) AS n, avg(x) AS m, "
            "min(v) AS lo, max(v) AS hi FROM s [RANGE 6 SLIDE 6]",
            make_rows(36, seed=1),
            mode=mode,
            chunks=[10, 10, 10, 6],
        )

    def test_sliding_windows(self):
        run_differential(
            "SELECT k, avg(x) AS m FROM s [RANGE 8 SLIDE 4] GROUP BY k",
            make_rows(40, seed=2),
            chunks=[7, 13, 20],
        )

    def test_order_by_with_ties_and_limit(self):
        # Duplicate v values force the merge-sort tie-break (__seq).
        rows = [(i % 3, i % 5, float(i % 4), "t") for i in range(30)]
        run_differential(
            "SELECT k, v FROM s [RANGE 10 SLIDE 10] "
            "WHERE v > 0 ORDER BY v DESC LIMIT 4",
            rows,
            ordered=True,
        )

    def test_grouped_order_by(self):
        run_differential(
            "SELECT k, avg(x) AS m FROM s [RANGE 9 SLIDE 9] "
            "GROUP BY k ORDER BY m DESC",
            make_rows(27, seed=3),
            ordered=True,
        )

    def test_distinct_str(self):
        run_differential(
            "SELECT DISTINCT tag FROM s [RANGE 10 SLIDE 10]",
            make_rows(40, seed=4),
        )

    def test_having(self):
        run_differential(
            "SELECT k, count(*) AS n FROM s [RANGE 12 SLIDE 12] "
            "GROUP BY k HAVING count(*) > 2",
            make_rows(36, seed=5, keys=4),
        )

    def test_three_partitions(self):
        run_differential(
            "SELECT sum(v) AS total FROM s [RANGE 5 SLIDE 5]",
            make_rows(30, seed=6),
            partitions=3,
        )

    def test_str_partition_key(self):
        run_differential(
            "SELECT tag, count(*) AS n FROM s [RANGE 8 SLIDE 8] GROUP BY tag",
            make_rows(32, seed=7),
            key="tag",
        )

    def test_compiled_backend_workers(self):
        run_differential(
            "SELECT k, sum(v) AS total FROM s [RANGE 8 SLIDE 8] GROUP BY k",
            make_rows(32, seed=8),
            backend="compiled",
        )

    def test_late_submit_uses_virtual_anchor(self):
        # The query arrives after 10 rows are already fed; both legs must
        # anchor their count windows at the same virtual offset.
        run_differential(
            "SELECT count(*) AS n FROM s [RANGE 5 SLIDE 5]",
            make_rows(30, seed=9),
            chunks=[10, 10, 10],
            submit_after=10,
        )


class TestDifferentialTimeWindows:
    def test_time_window_grouped(self):
        # Regression (fuzz seed=42 iteration=7): the window-closing row
        # routes to one partition only; the batch watermark must still
        # close the window on every other partition.
        rows = [(2, 5, 3.25, "a"), (2, 6, 0.75, "a"), (0, 6, 8.75, "a"), (5, 3, 4.5, "a")]
        run_differential(
            "SELECT min(x) AS lo FROM s [RANGE 10 MILLISECONDS] GROUP BY k",
            rows,
            timestamps=[1011653, 1012673, 1019374, 1021796],
        )

    def test_time_window_punctuation_closes_empty_partitions(self):
        rows = [(i, i, float(i), "a") for i in range(8)]
        ts = [i * 3_000 for i in range(8)]

        def run(partitions):
            engine = DataCellEngine(partitions=partitions)
            try:
                engine.create_stream(
                    "s", [("k", "int"), ("v", "int"), ("x", "float"), ("tag", "str")],
                    partition_by="k" if partitions > 1 else None,
                )
                q = engine.submit(
                    "SELECT sum(v) AS total FROM s [RANGE 6 MILLISECONDS]"
                )
                engine.feed("s", rows=rows, timestamps=ts)
                engine.run_until_idle()
                # Silence: punctuate past the final window boundary.
                engine.advance_time("s", 60_000)
                engine.run_until_idle()
                return q.result_rows()
            finally:
                engine.close()

        reference, sharded = run(1), run(2)
        assert_windows_match(reference, sharded, ordered=False)
        assert len(reference) >= 3

    def test_chunked_time_feed(self):
        rows = make_rows(24, seed=10)
        ts = sorted(int(t) for t in np.random.default_rng(11).integers(0, 50_000, 24))
        run_differential(
            "SELECT k, count(*) AS n FROM s [RANGE 10 MILLISECONDS] GROUP BY k",
            rows,
            timestamps=ts,
            chunks=[5, 9, 10],
        )


class TestLandmarkPartitioned:
    """Landmark windows on key-partitioned streams (DESIGN.md §16).

    Landmark never expires input, so per-partition cumulative slices
    merge per *aligned window* rather than incrementally: each route is
    exercised P=4 vs P=1, window-for-window.
    """

    @pytest.mark.parametrize("mode", ["incremental", "reeval"])
    def test_global_aggregates_re_aggregate_route(self, mode):
        run_differential(
            "SELECT sum(v) AS t, count(*) AS n, avg(x) AS m, max(v) AS hi "
            "FROM s [LANDMARK SLIDE 8]",
            make_rows(48, seed=6),
            partitions=4,
            mode=mode,
            chunks=[11, 13, 24],
        )

    def test_grouped_by_key_merge_free(self):
        run_differential(
            "SELECT k, sum(v) AS t, count(*) AS n "
            "FROM s [LANDMARK SLIDE 8] GROUP BY k",
            make_rows(48, seed=7),
            partitions=4,
            chunks=[9, 17, 22],
        )

    def test_select_only_concat_route(self):
        run_differential(
            "SELECT k, v FROM s [LANDMARK SLIDE 6] WHERE v > 40",
            make_rows(36, seed=8),
            partitions=4,
        )

    def test_time_landmark(self):
        rows = make_rows(30, seed=9)
        ts = sorted(
            int(t) for t in np.random.default_rng(10).integers(0, 40_000, 30)
        )
        run_differential(
            "SELECT count(*) AS n, sum(v) AS t "
            "FROM s [LANDMARK SLIDE 10 MILLISECONDS]",
            rows,
            partitions=4,
            timestamps=ts,
            chunks=[7, 11, 12],
        )


# ----------------------------------------------------------------------
# lifecycle: shared memory, stats, unsupported surfaces
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_no_shm_segments_leak_after_close(self, monkeypatch):
        import repro.core.shard as shard

        monkeypatch.setattr(shard, "SHM_MIN_ROWS", 1)  # force the shm path
        pattern = f"/dev/shm/repro-{os.getpid()}-*"
        engine = DataCellEngine(partitions=2)
        try:
            engine.create_stream(
                "s", [("k", "int"), ("v", "int")], partition_by="k"
            )
            q = engine.submit("SELECT k, sum(v) AS t FROM s [RANGE 16 SLIDE 16] GROUP BY k")
            for __ in range(4):
                engine.feed("s", rows=[(i % 5, i) for i in range(32)])
                engine.run_until_idle()
            assert len(q.result_rows()) == 8
        finally:
            engine.close()
        assert glob.glob(pattern) == [], "shared-memory segments leaked"

    def test_partition_stats_shape(self):
        engine = DataCellEngine(partitions=2)
        try:
            engine.create_stream(
                "s", [("k", "int"), ("v", "int")], partition_by="k"
            )
            engine.submit(
                "SELECT sum(v) AS t FROM s [RANGE 4 SLIDE 4]", name="agg"
            )
            engine.feed("s", rows=[(i, i) for i in range(8)])
            engine.run_until_idle()
            stats = engine.partition_stats()
            assert stats["streams"]["s"]["key"] == "k"
            assert sum(stats["streams"]["s"]["routed"]) == 8
            assert 0.0 <= stats["streams"]["s"]["skew"] <= 1.0
            assert stats["queries"]["agg"]["route"] == "re-aggregate"
            assert stats["queries"]["agg"]["windows"] == 2
            assert stats["queries"]["agg"]["lag"] == 0
            assert len(stats["workers"]) == 2
            metrics = engine.metrics()
            assert metrics["engine"]["partitions"] == 2
            assert metrics["partition"]["streams"]["s"]["key"] == "k"
            from repro.obs.metrics import render_prometheus

            text = render_prometheus(metrics, obs=engine.obs)
            assert "repro_partition_routed_total" in text
            assert "repro_partition_merged_windows_total" in text
        finally:
            engine.close()

    def test_unsupported_surfaces(self):
        engine = DataCellEngine(partitions=2)
        try:
            engine.create_stream(
                "s", [("k", "int"), ("v", "int")], partition_by="k"
            )
            engine.create_stream("t", [("k", "int"), ("w", "int")])
            with pytest.raises(UnsupportedQueryError):
                engine.submit(
                    "SELECT s.v, t.w FROM s [RANGE 4 SLIDE 4], t [RANGE 4 SLIDE 4] "
                    "WHERE s.k = t.k"
                )
            # Landmark submits are accepted since the partitioned-landmark
            # rework (see TestLandmarkPartitioned).
            engine.submit("SELECT k, v FROM s [LANDMARK SLIDE 4]")
            q = engine.submit("SELECT sum(v) AS t FROM s [RANGE 4 SLIDE 4]")
            with pytest.raises(UnsupportedQueryError):
                engine.receptor(q, "s")
            with pytest.raises(UnsupportedQueryError):
                engine.start()
        finally:
            engine.close()

    def test_float_partition_key_rejected(self):
        engine = DataCellEngine(partitions=2)
        try:
            with pytest.raises(ReproError):
                engine.create_stream(
                    "s", [("x", "float"), ("v", "int")], partition_by="x"
                )
        finally:
            engine.close()

    def test_partitions_one_stays_in_process(self):
        engine = DataCellEngine()  # P=1: declaration accepted, no workers
        try:
            engine.create_stream(
                "s", [("k", "int"), ("v", "int")], partition_by="k"
            )
            q = engine.submit("SELECT sum(v) AS t FROM s [RANGE 4 SLIDE 4]")
            engine.feed("s", rows=[(i, i) for i in range(4)])
            engine.run_until_idle()
            assert q.result_rows() == [[(6,)]]
            assert engine.partition_stats() == {}
        finally:
            engine.close()

    def test_query_handle_and_remove(self):
        engine = DataCellEngine(partitions=2)
        try:
            engine.create_stream(
                "s", [("k", "int"), ("v", "int")], partition_by="k"
            )
            q = engine.submit(
                "SELECT k, sum(v) AS t FROM s [RANGE 4 SLIDE 4] GROUP BY k",
                name="mine",
            )
            assert engine.query("mine") is q
            engine.feed("s", rows=[(i % 2, i) for i in range(8)])
            engine.run_until_idle()
            assert len(q.result_rows()) == 2
            engine.remove("mine")
            engine.feed("s", rows=[(i % 2, i) for i in range(8)])
            engine.run_until_idle()
            assert len(q.result_rows()) == 2  # no further windows
        finally:
            engine.close()


# ----------------------------------------------------------------------
# row order: partitioned output must match P=1 exactly, not just as sets
# ----------------------------------------------------------------------
class TestRowOrderParity:
    """The coordinator's ordering pass restores the P=1 row order.

    The P=1 engine emits grouped rows in ascending group-key order,
    DISTINCT rows ascending by every output column, and plain selections
    in arrival order.  Naive concatenation emits partition order instead;
    every case here compares windows with ``ordered=True`` so a
    partition-ordered result fails.
    """

    ROWS = [(k, v, 0.0, "t") for v, k in enumerate([3, 1, 2, 1, 3, 2, 0, 1])]

    @pytest.mark.parametrize("partitions", [2, 3])
    def test_grouped_concat_orders_by_key(self, partitions):
        run_differential(
            "SELECT k, sum(v) AS t FROM s [RANGE 4 SLIDE 4] GROUP BY k",
            self.ROWS,
            partitions=partitions,
            ordered=True,
        )

    def test_grouped_hidden_key_orders_by_key(self):
        # The group key is absent from the output: the partition query
        # ships it as a hidden helper column, the coordinator sorts by
        # it, then drops it.
        run_differential(
            "SELECT sum(v) AS t FROM s [RANGE 4 SLIDE 4] GROUP BY k",
            self.ROWS,
            partitions=3,
            ordered=True,
        )

    def test_distinct_grouped_hidden_key_dedups_across_partitions(self):
        # Identical aggregate rows from *different* key groups land on
        # different partitions; per-partition DISTINCT cannot see the
        # duplicate, so this shape must take the merge-sort route.
        rows = [(k, 5, 0.0, "t") for k in (1, 2, 1, 2)]
        run_differential(
            "SELECT DISTINCT sum(v) AS t FROM s [RANGE 4 SLIDE 4] GROUP BY k",
            rows,
            partitions=2,
            ordered=True,
        )

    def test_distinct_orders_by_output_columns(self):
        run_differential(
            "SELECT DISTINCT k FROM s [RANGE 4 SLIDE 4]",
            self.ROWS,
            partitions=2,
            ordered=True,
        )

    def test_plain_select_preserves_arrival_order(self):
        run_differential(
            "SELECT k, v FROM s [RANGE 4 SLIDE 4] WHERE v >= 0",
            self.ROWS,
            partitions=3,
            ordered=True,
        )

"""Tests for m-chunk processing and the adaptive controller (Figure 8)."""

import numpy as np
import pytest

from repro import AdaptiveChunker, DataCellEngine
from repro.errors import UnsupportedQueryError

from conftest import ref_q1, assert_rows_equal


@pytest.fixture
def engine():
    e = DataCellEngine()
    e.create_stream("s", [("x1", "int"), ("x2", "int")])
    e.create_stream("s2", [("x1", "int"), ("x2", "int")])
    return e


SQL = "SELECT x1, sum(x2) FROM s [RANGE 60 SLIDE 12] WHERE x1 > 2 GROUP BY x1 ORDER BY x1"


def feed(engine, count, seed=0):
    rng = np.random.default_rng(seed)
    x1 = rng.integers(0, 10, count).astype(np.int64)
    x2 = rng.integers(0, 9, count).astype(np.int64)
    engine.feed("s", columns={"x1": x1, "x2": x2})
    return x1, x2


class TestChunkedStepping:
    @pytest.mark.parametrize("m", [1, 2, 3, 4, 12])
    def test_chunked_equals_plain(self, engine, m):
        q_plain = engine.submit(SQL)
        q_chunk = engine.submit(SQL)
        x1, x2 = feed(engine, 240, seed=1)
        plain, chunked = [], []
        while q_plain.factory.ready():
            plain.append(q_plain.factory.step().rows())
        while q_chunk.factory.ready():
            chunked.append(q_chunk.factory.step_chunked(m).rows())
        assert plain == chunked
        assert len(plain) == 16

    def test_chunked_matches_reference(self, engine):
        query = engine.submit(SQL)
        x1, x2 = feed(engine, 180, seed=2)
        results = []
        while query.factory.ready():
            results.append(query.factory.step_chunked(5).rows())
        for k, rows in enumerate(results):
            expected = ref_q1(x1[k * 12 : k * 12 + 60], x2[k * 12 : k * 12 + 60], 2)
            assert_rows_equal(rows, expected)

    def test_m_clamped_to_step_size(self, engine):
        query = engine.submit(SQL)
        feed(engine, 120, seed=3)
        batch = query.factory.step_chunked(999)  # m > |w| must still work
        assert batch is not None

    def test_m_must_be_positive(self, engine):
        query = engine.submit(SQL)
        feed(engine, 60, seed=3)
        with pytest.raises(UnsupportedQueryError):
            query.factory.step_chunked(0)

    def test_not_ready_returns_none(self, engine):
        query = engine.submit(SQL)
        assert query.factory.step_chunked(4) is None

    def test_join_queries_rejected(self, engine):
        query = engine.submit(
            "SELECT count(*) FROM s a [RANGE 20 SLIDE 10], s2 b [RANGE 20 SLIDE 10] "
            "WHERE a.x2 = b.x2"
        )
        with pytest.raises(UnsupportedQueryError):
            query.factory.step_chunked(2)

    def test_landmark_rejected(self, engine):
        query = engine.submit("SELECT count(*) FROM s [LANDMARK SLIDE 10]")
        feed(engine, 10, seed=4)
        with pytest.raises(UnsupportedQueryError):
            query.factory.step_chunked(2)


class TestAdaptiveChunker:
    def test_grows_until_degradation_then_freezes(self):
        chunker = AdaptiveChunker(steps_per_level=2)
        # m=1 level: mean 1.0
        chunker.observe(1.0)
        chunker.observe(1.0)
        assert chunker.current_m == 2
        # m=2 level: better (0.5)
        chunker.observe(0.5)
        chunker.observe(0.5)
        assert chunker.current_m == 4
        # m=4 level: worse (2.0) -> reset to best (2) and freeze
        chunker.observe(2.0)
        chunker.observe(2.0)
        assert chunker.current_m == 2
        assert chunker.frozen

    def test_frozen_ignores_observations(self):
        chunker = AdaptiveChunker(steps_per_level=1)
        chunker.observe(1.0)
        chunker.observe(2.0)  # worse -> freeze at 1
        assert chunker.frozen
        m = chunker.current_m
        chunker.observe(0.0001)
        assert chunker.current_m == m

    def test_max_m_stops_growth(self):
        chunker = AdaptiveChunker(steps_per_level=1, max_m=4)
        chunker.observe(4.0)  # m=1 done -> m=2
        chunker.observe(3.0)  # m=2 done -> m=4
        chunker.observe(2.0)  # m=4 done -> next would be 8 > max -> freeze at best
        assert chunker.frozen
        assert chunker.current_m == 4

    def test_history_records_levels(self):
        chunker = AdaptiveChunker(steps_per_level=1)
        chunker.observe(1.0)
        chunker.observe(0.5)
        assert chunker.history == [(1, 1.0), (2, 0.5)]

    def test_paper_schedule_shape(self):
        """Doubling every 5 steps, degradation at 1024 -> resort to 512."""
        chunker = AdaptiveChunker(steps_per_level=5)
        level_means = {m: 1.0 / m for m in (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)}
        level_means[1024] = 1.0  # degradation
        for m in (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024):
            for __ in range(5):
                chunker.observe(level_means[m])
        assert chunker.frozen
        assert chunker.current_m == 512

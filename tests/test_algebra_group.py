"""Unit and property tests for grouping operators."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import AlignmentError, KernelError
from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT
from repro.kernel.algebra.group import distinct, group, group_values

from conftest import int_bat, str_bat


class TestSingleKeyGroup:
    def test_dense_ids_in_value_order(self):
        g = group([int_bat([3, 1, 3, 2, 1])])
        assert g.gids.to_list() == [2, 0, 2, 1, 0]
        assert g.ngroups == 3
        # extents: first occurrence per (sorted) group value
        assert g.extents.to_list() == [1, 3, 0]

    def test_group_values(self):
        keys = int_bat([3, 1, 3, 2, 1])
        g = group([keys])
        assert group_values(g, keys).to_list() == [1, 2, 3]

    def test_empty(self):
        g = group([BAT.empty(Atom.INT)])
        assert g.ngroups == 0
        assert g.gids.to_list() == []

    def test_strings(self):
        g = group([str_bat(["b", "a", "b"])])
        assert g.ngroups == 2
        assert g.gids.to_list() == [1, 0, 1]

    def test_hseq_extents_absolute(self):
        g = group([int_bat([5, 5, 6], hseq=10)])
        assert g.extents.to_list() == [10, 12]

    def test_no_keys_raises(self):
        with pytest.raises(KernelError):
            group([])


class TestMultiKeyGroup:
    def test_two_keys(self):
        k1 = int_bat([1, 1, 2, 2, 1])
        k2 = int_bat([0, 1, 0, 0, 0])
        g = group([k1, k2])
        assert g.ngroups == 3
        # rows 0 and 4 share a group; rows 2,3 share a group.
        gids = g.gids.to_list()
        assert gids[0] == gids[4]
        assert gids[2] == gids[3]
        assert len({gids[0], gids[1], gids[2]}) == 3

    def test_misaligned_keys_raise(self):
        with pytest.raises(AlignmentError):
            group([int_bat([1, 2]), int_bat([1, 2, 3])])

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=60
        )
    )
    def test_matches_python_grouping(self, rows):
        k1 = int_bat([a for a, __ in rows])
        k2 = int_bat([b for __, b in rows])
        g = group([k1, k2])
        expected_groups = sorted(set(rows))
        assert g.ngroups == len(expected_groups)
        gids = g.gids.to_list()
        mapping: dict = {}
        for row, gid in zip(rows, gids):
            assert mapping.setdefault(row, gid) == gid


class TestDistinct:
    def test_sorted_unique(self):
        assert distinct(int_bat([3, 1, 3, 2])).to_list() == [1, 2, 3]

    def test_empty(self):
        assert distinct(BAT.empty(Atom.INT)).to_list() == []

"""Tests for incremental plan construction (structure, not execution)."""

import pytest

from repro.core.rewriter import rewrite
from repro.errors import UnsupportedQueryError
from repro.sql.optimizer import optimize
from repro.sql.planner import plan_query


def rewritten(catalog, sql):
    return rewrite(optimize(plan_query(sql, catalog)))


class TestSingleStreamPrograms:
    def test_select_only_flows_are_pack(self, catalog):
        plan = rewritten(
            catalog, "SELECT x1, x2 FROM s [RANGE 100 SLIDE 10] WHERE x1 > 2"
        )
        assert [f.kind for f in plan.flows] == ["pack", "pack"]
        assert plan.fragment is not None
        assert not plan.is_join

    def test_fragment_contains_selection(self, catalog):
        plan = rewritten(catalog, "SELECT x1 FROM s [RANGE 100 SLIDE 10] WHERE x1 > 2")
        opcodes = [i.opcode for i in plan.fragment.instructions]
        assert "algebra.thetaselect" in opcodes

    def test_grouped_flows(self, catalog):
        plan = rewritten(
            catalog,
            "SELECT x1, sum(x2), count(*) FROM s [RANGE 100 SLIDE 10] GROUP BY x1",
        )
        assert [f.kind for f in plan.flows] == ["gkey", "gsum", "gcount"]
        combine_ops = [i.opcode for i in plan.combine.instructions]
        assert "group.group" in combine_ops
        # count partials are combined with a SUM (compensation rule)
        assert combine_ops.count("aggr.subsum") == 2

    def test_avg_expanding_replication(self, catalog):
        """Figure 3(c): avg splits into sum and count flows plus a division."""
        plan = rewritten(catalog, "SELECT avg(x1) FROM s [RANGE 100 SLIDE 10]")
        assert [f.kind for f in plan.flows] == ["sum", "count"]
        fragment_ops = [i.opcode for i in plan.fragment.instructions]
        assert "aggr.sum" in fragment_ops and "aggr.count" in fragment_ops
        finalize_ops = [i.opcode for i in plan.finalize.instructions]
        assert "calc.div" in finalize_ops

    def test_global_sum_compensated_by_sum(self, catalog):
        """Figure 3(b): partial sums are merged by summing them."""
        plan = rewritten(catalog, "SELECT sum(x2) FROM s [RANGE 100 SLIDE 10]")
        assert [i.opcode for i in plan.combine.instructions] == ["aggr.sum"]

    def test_merge_programs_tagged_merge(self, catalog):
        plan = rewritten(
            catalog, "SELECT x1, sum(x2) FROM s [RANGE 100 SLIDE 10] GROUP BY x1"
        )
        assert all(i.tag == "merge" for i in plan.combine.instructions)
        assert all(i.tag == "merge" for i in plan.finalize.instructions)
        assert all(i.tag == "main" for i in plan.fragment.instructions)

    def test_fragment_outputs_match_flows(self, catalog):
        plan = rewritten(
            catalog,
            "SELECT x1, avg(x2) FROM s [RANGE 100 SLIDE 10] GROUP BY x1",
        )
        assert len(plan.fragment.outputs) == len(plan.flows)
        assert [f.name for f in plan.flows] == ["key_0", "agg_0__sum", "agg_0__cnt"]

    def test_owned_outputs_for_bare_projection(self, catalog):
        """A flow that would alias an input column must be materialized."""
        plan = rewritten(catalog, "SELECT x1 FROM s [RANGE 100 SLIDE 10]")
        opcodes = [i.opcode for i in plan.fragment.instructions]
        assert "bat.materialize" in opcodes

    def test_describe_lists_programs(self, catalog):
        plan = rewritten(catalog, "SELECT sum(x1) FROM s [RANGE 100 SLIDE 10]")
        text = plan.describe()
        assert "fragment" in text and "combine" in text and "finalize" in text


class TestJoinPrograms:
    SQL = (
        "SELECT max(s1.x1), avg(s2.x1) FROM s s1 [RANGE 40 SLIDE 10], "
        "s2 [RANGE 40 SLIDE 10] WHERE s1.x2 = s2.x2 AND s1.x1 > 2"
    )

    def test_structure(self, catalog):
        plan = rewritten(catalog, self.SQL)
        assert plan.is_join
        assert set(plan.preps) == {"s1", "s2"}
        assert plan.pair_fragment is not None
        assert plan.fragment is None

    def test_prep_contains_selection(self, catalog):
        plan = rewritten(catalog, self.SQL)
        s1_ops = [i.opcode for i in plan.preps["s1"].program.instructions]
        assert "algebra.thetaselect" in s1_ops
        # unfiltered side: columns are just materialized
        s2_ops = [i.opcode for i in plan.preps["s2"].program.instructions]
        assert "algebra.thetaselect" not in s2_ops

    def test_prep_carries_needed_columns_only(self, catalog):
        plan = rewritten(catalog, self.SQL)
        assert set(plan.preps["s1"].columns) == {"x1", "x2"}
        assert set(plan.preps["s2"].columns) == {"x1", "x2"}

    def test_pair_fragment_joins(self, catalog):
        plan = rewritten(catalog, self.SQL)
        opcodes = [i.opcode for i in plan.pair_fragment.instructions]
        assert "algebra.join" in opcodes

    def test_flows(self, catalog):
        plan = rewritten(catalog, self.SQL)
        assert [f.kind for f in plan.flows] == ["max", "sum", "count"]

    def test_hybrid_table_side(self, catalog):
        plan = rewritten(
            catalog,
            "SELECT count(*) FROM s s1 [RANGE 40 SLIDE 10], ref "
            "WHERE s1.x2 = ref.x2",
        )
        assert plan.table_alias == "ref"
        assert "ref" in plan.preps


class TestOutputsAndMetadata:
    def test_output_names(self, catalog):
        plan = rewritten(
            catalog,
            "SELECT x1 AS grp, sum(x2) AS total FROM s [RANGE 100 SLIDE 10] GROUP BY x1",
        )
        assert plan.output_names == ["grp", "total"]

    def test_windows_recorded(self, catalog):
        plan = rewritten(catalog, "SELECT x1 FROM s [RANGE 100 SLIDE 25]")
        assert plan.windows["s"].basic_windows == 4

    def test_programs_validate(self, catalog):
        plan = rewritten(
            catalog,
            "SELECT x1, min(x2), max(x2), avg(x2) FROM s [RANGE 100 SLIDE 10] "
            "GROUP BY x1 HAVING min(x2) > 0 ORDER BY x1 LIMIT 4",
        )
        plan.fragment.validate()
        plan.combine.validate()
        plan.finalize.validate()

"""Round-trip property: ``parse(unparse(parse(sql))) == parse(sql)``.

The partitioned-execution layer ships rewritten ASTs to shard workers as
SQL text (workers parse and plan locally), so :mod:`repro.sql.unparse`
must render every AST the parser can produce back into text the parser
accepts — and the re-parse must be structurally identical.
"""

import numpy as np
import pytest

from repro.sql.ast import Query, TableRef, WindowClause
from repro.sql.parser import parse
from repro.sql.unparse import unparse, unparse_expr
from repro.testing.fuzz.generator import TAXONOMY, QueryGenerator

HAND_CASES = [
    "SELECT a FROM s [RANGE 10 SLIDE 5]",
    "SELECT a, b AS bee FROM s [RANGE 10 SLIDE 10]",
    "SELECT DISTINCT a FROM s [RANGE 4 SLIDE 4]",
    "SELECT count(*) AS n FROM s [RANGE 3 SLIDE 3]",
    "SELECT sum(a) AS s, avg(b) AS m FROM s [RANGE 8 SLIDE 2] GROUP BY c",
    "SELECT a FROM s [RANGE 10 MILLISECONDS]",
    "SELECT a FROM s [RANGE 10 MILLISECONDS SLIDE 5 MILLISECONDS]",
    "SELECT a FROM s [LANDMARK SLIDE 7]",
    "SELECT a FROM s [LANDMARK SLIDE 20 MILLISECONDS]",
    "SELECT a FROM s AS t [RANGE 5 SLIDE 5] WHERE t.a > 3",
    "SELECT s.a, u.b FROM s [RANGE 4 SLIDE 4], u [RANGE 4 SLIDE 4] "
    "WHERE s.k = u.k",
    "SELECT a FROM s [RANGE 5 SLIDE 5] WHERE (a + 2) * 3 > -4 AND NOT b",
    "SELECT a FROM s [RANGE 5 SLIDE 5] WHERE c = 'it''s' OR c = ''",
    "SELECT a FROM s [RANGE 5 SLIDE 5] WHERE x > 1.5 AND x < 2e3",
    "SELECT a FROM s [RANGE 5 SLIDE 5] WHERE b = true AND c = null",
    "SELECT k, count(*) AS n FROM s [RANGE 6 SLIDE 6] GROUP BY k "
    "HAVING count(*) > 2 ORDER BY n DESC, k LIMIT 3",
    "SELECT (a - b) / (c % 2) AS r FROM s [RANGE 5 SLIDE 5] ORDER BY r",
]


@pytest.mark.parametrize("sql", HAND_CASES)
def test_hand_written_round_trips(sql):
    ast = parse(sql)
    rendered = unparse(ast)
    assert parse(rendered) == ast
    # Fixed point: rendering the re-parse changes nothing further.
    assert unparse(parse(rendered)) == rendered


def test_fuzz_corpus_round_trips():
    """Every query the fuzz generator can draw must round-trip."""
    checked = 0
    for i, focus in enumerate(TAXONOMY * 6):
        gen = QueryGenerator(np.random.default_rng([97, i]))
        ast = parse(gen.query(focus=focus).sql)
        rendered = unparse(ast)
        assert parse(rendered) == ast, rendered
        checked += 1
    assert checked >= 60


def test_expression_parenthesization_preserves_shape():
    # Without full parenthesization this would re-associate.
    ast = parse("SELECT a FROM s [RANGE 2 SLIDE 2] WHERE a - (b - c) > 0")
    assert parse(unparse(ast)) == ast


def test_string_escaping():
    ast = parse("SELECT a FROM s [RANGE 2 SLIDE 2] WHERE c = 'a''b'")
    rendered = unparse(ast)
    assert "'a''b'" in rendered
    assert parse(rendered) == ast


def test_sub_millisecond_window_rejected():
    window = WindowClause(kind="tumbling", size=1_500, step=1_500, time_based=True)
    query = Query(
        select_items=parse("SELECT a FROM s [RANGE 1 SLIDE 1]").select_items,
        tables=[TableRef("s", "s", window)],
        where=None,
        group_by=[],
        having=None,
        order_by=[],
        limit=None,
        distinct=False,
    )
    with pytest.raises(ValueError):
        unparse(query)


def test_unparse_expr_rejects_foreign_nodes():
    with pytest.raises(TypeError):
        unparse_expr(object())

"""Bounded baskets and overflow policies (overload-control tentpole).

Covers the policy decisions (Fail / Block / ShedOldest / ShedNewest /
Sample), the basket mechanics they drive, the engine-level wiring
(per-stream knobs, profiler counters, fragment-sharing opt-out), and —
crucially — pins that an unbounded basket behaves exactly as before.
"""

import threading
import time

import numpy as np
import pytest

from repro import DataCellEngine
from repro.core.basket import Basket
from repro.core.overflow import (
    Block,
    Fail,
    Sample,
    ShedNewest,
    ShedOldest,
    parse_overflow_spec,
)
from repro.errors import BasketError, BasketOverflowError, ReproError
from repro.kernel.atoms import Atom
from repro.kernel.execution.profiler import COUNTER_SHED, Profiler
from repro.kernel.storage import Schema
from repro.testing import wait_until

SCHEMA = Schema.of(("x", Atom.INT))


def make_basket(capacity=None, overflow=None):
    return Basket("b", SCHEMA, capacity=capacity, overflow=overflow)


def rows(*values):
    return [(v,) for v in values]


class TestConstruction:
    def test_capacity_must_be_positive(self):
        with pytest.raises(BasketError):
            make_basket(capacity=0)

    def test_policy_without_capacity_rejected(self):
        with pytest.raises(BasketError):
            make_basket(overflow=ShedOldest())

    def test_default_policy_is_fail(self):
        basket = make_basket(capacity=3)
        assert isinstance(basket.overflow_policy, Fail)

    def test_unbounded_has_no_policy(self):
        basket = make_basket()
        assert basket.capacity is None
        assert basket.overflow_policy is None


class TestFail:
    def test_fitting_batch_admitted(self):
        basket = make_basket(capacity=3)
        assert basket.append_rows(rows(1, 2, 3)) == 3

    def test_overflow_raises_and_appends_nothing(self):
        basket = make_basket(capacity=3)
        basket.append_rows(rows(1, 2))
        with pytest.raises(BasketOverflowError) as info:
            basket.append_rows(rows(3, 4))
        assert info.value.requested == 2
        assert info.value.room == 1
        assert basket.column("x").to_list() == [1, 2]

    def test_room_frees_after_delete_head(self):
        basket = make_basket(capacity=3)
        basket.append_rows(rows(1, 2, 3))
        basket.delete_head(2)
        assert basket.append_rows(rows(4, 5)) == 2
        assert basket.column("x").to_list() == [3, 4, 5]


class TestShedOldest:
    def test_evicts_head_keeps_newest(self):
        basket = make_basket(capacity=5, overflow=ShedOldest())
        basket.append_rows(rows(*range(5)))
        basket.append_rows(rows(5, 6, 7))
        assert basket.column("x").to_list() == [3, 4, 5, 6, 7]
        assert basket.shed_total == 3

    def test_batch_larger_than_capacity(self):
        basket = make_basket(capacity=4, overflow=ShedOldest())
        basket.append_rows(rows(0, 1))
        admitted = basket.append_rows(rows(*range(10, 20)))
        assert admitted == 4
        assert basket.column("x").to_list() == [16, 17, 18, 19]
        # 2 parked evicted + 6 of the incoming batch dropped
        assert basket.shed_total == 8

    def test_timestamps_stay_monotonic(self):
        basket = make_basket(capacity=4, overflow=ShedOldest())
        basket.append_rows(rows(*range(4)))
        basket.append_rows(rows(4, 5))
        ts = basket.timestamps().to_list()
        assert ts == sorted(ts)
        assert basket.count_before(ts[-1]) == len(ts) - 1

    def test_columnar_path(self):
        basket = make_basket(capacity=5, overflow=ShedOldest())
        basket.append_columns({"x": np.arange(5)})
        basket.append_columns({"x": np.arange(5, 8)})
        assert basket.column("x").to_list() == [3, 4, 5, 6, 7]


class TestShedNewest:
    def test_admits_prefix_drops_tail(self):
        basket = make_basket(capacity=5, overflow=ShedNewest())
        admitted = basket.append_columns({"x": np.arange(8)})
        assert admitted == 5
        assert basket.column("x").to_list() == [0, 1, 2, 3, 4]
        assert basket.shed_total == 3

    def test_full_basket_sheds_everything(self):
        basket = make_basket(capacity=2, overflow=ShedNewest())
        basket.append_rows(rows(1, 2))
        assert basket.append_rows(rows(3, 4, 5)) == 0
        assert basket.shed_total == 3

    def test_explicit_timestamps_follow_selection(self):
        basket = make_basket(capacity=2, overflow=ShedNewest())
        basket.append_rows(rows(1, 2, 3), timestamps=[10, 20, 30])
        assert basket.timestamps().to_list() == [10, 20]


class TestSample:
    def test_deterministic_for_seed(self):
        outcomes = []
        for __ in range(2):
            basket = make_basket(capacity=10, overflow=Sample(0.5, seed=42))
            basket.append_columns({"x": np.arange(10)})
            basket.append_columns({"x": np.arange(10, 30)})
            outcomes.append((basket.column("x").to_list(), basket.shed_total))
        assert outcomes[0] == outcomes[1]

    def test_capacity_is_hard_bound(self):
        basket = make_basket(capacity=4, overflow=Sample(1.0, seed=0))
        basket.append_columns({"x": np.arange(3)})
        basket.append_columns({"x": np.arange(50)})
        assert len(basket) == 4

    def test_rate_zero_sheds_all_overflow(self):
        basket = make_basket(capacity=4, overflow=Sample(0.0, seed=0))
        basket.append_columns({"x": np.arange(4)})
        assert basket.append_columns({"x": np.arange(6)}) == 0
        assert basket.shed_total == 6

    def test_bad_rate_rejected(self):
        with pytest.raises(ReproError):
            Sample(1.5)

    def test_clone_restarts_rng(self):
        policy = Sample(0.5, seed=7)
        first = policy.admit(0, 100, 10)
        clone = policy.clone()
        assert np.array_equal(clone.admit(0, 100, 10).keep, first.keep)


class TestBlock:
    def test_timeout_raises_not_deadlocks(self):
        basket = make_basket(capacity=2, overflow=Block(timeout=0.05))
        basket.append_rows(rows(1, 2))
        start = time.monotonic()
        with pytest.raises(BasketOverflowError):
            basket.append_rows(rows(3))
        assert time.monotonic() - start < 2.0
        assert basket.block_timeouts == 1
        assert basket.block_waits == 1

    def test_oversized_batch_fails_fast(self):
        basket = make_basket(capacity=2, overflow=Block(timeout=30.0))
        start = time.monotonic()
        with pytest.raises(BasketOverflowError):
            basket.append_rows(rows(1, 2, 3))
        assert time.monotonic() - start < 1.0

    def test_consumer_unblocks_producer(self):
        basket = make_basket(capacity=2, overflow=Block(timeout=5.0))
        basket.append_rows(rows(1, 2))
        done = threading.Event()

        def producer():
            basket.append_rows(rows(3))
            done.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.02)
        assert not done.is_set()  # parked, waiting for room
        basket.delete_head(1)
        assert done.wait(5.0)
        assert basket.column("x").to_list() == [2, 3]

    def test_negative_timeout_rejected(self):
        with pytest.raises(ReproError):
            Block(timeout=-1)

    def test_two_producers_wake_in_room_order(self):
        """Partial room wakes only the producer whose batch fits.

        `delete_head` uses `notify_all`, so both parked producers recheck
        the room; the admit loop must put back to sleep the one whose
        batch still does not fit (no partial append, no lost wake-up).
        Sequenced on observable basket state via ``wait_until`` — no
        timing assumptions.
        """
        basket = make_basket(capacity=3, overflow=Block(timeout=10.0))
        basket.append_rows(rows(1, 2, 3))
        big_done = threading.Event()
        small_done = threading.Event()

        def big_producer():
            basket.append_rows(rows(7, 8))  # needs room 2
            big_done.set()

        def small_producer():
            basket.append_rows(rows(9))  # needs room 1
            small_done.set()

        big = threading.Thread(target=big_producer, daemon=True)
        big.start()
        assert wait_until(lambda: basket.block_waits == 1)
        small = threading.Thread(target=small_producer, daemon=True)
        small.start()
        assert wait_until(lambda: basket.block_waits == 2)
        assert not big_done.is_set() and not small_done.is_set()

        basket.delete_head(1)  # room 1: only the small batch fits
        assert small_done.wait(5.0)
        assert not big_done.is_set()  # woken, rechecked, parked again
        assert basket.column("x").to_list() == [2, 3, 9]

        basket.delete_head(2)  # room 2: now the big batch admits
        assert big_done.wait(5.0)
        big.join(5.0)
        small.join(5.0)
        assert basket.column("x").to_list() == [9, 7, 8]
        assert basket.block_waits == 2
        assert basket.block_timeouts == 0


class TestProfilerSurface:
    def test_shed_counts_mirrored(self):
        basket = make_basket(capacity=2, overflow=ShedNewest())
        profiler = Profiler()
        basket.attach_profiler(profiler)
        basket.append_rows(rows(1, 2, 3, 4))
        assert profiler.counter(COUNTER_SHED) == 2
        assert basket.overflow_stats()["shed"] == 2


class TestUnboundedPinned:
    """With capacity unset, behaviour is byte-identical to the seed."""

    def test_no_overflow_state_touched(self):
        basket = make_basket()
        basket.append_rows(rows(*range(100)))
        basket.append_columns({"x": np.arange(100)})
        assert basket.shed_total == 0
        assert basket.block_waits == 0
        assert len(basket) == 200
        assert basket.appended_total == 200

    def test_logical_clock_unchanged(self):
        basket = make_basket()
        basket.append_rows(rows(1, 2))
        basket.append_columns({"x": np.arange(3)})
        assert basket.timestamps().to_list() == [0, 1, 2, 3, 4]

    def test_query_results_identical_with_and_without_capacity(self):
        def run(**stream_kwargs):
            engine = DataCellEngine()
            engine.create_stream(
                "s", [("x1", "int"), ("x2", "int")], **stream_kwargs
            )
            query = engine.submit(
                "SELECT x1, sum(x2) FROM s [RANGE 40 SLIDE 20] "
                "GROUP BY x1 ORDER BY x1"
            )
            rng = np.random.default_rng(3)
            for __ in range(5):
                engine.feed(
                    "s",
                    columns={
                        "x1": rng.integers(0, 4, 20),
                        "x2": rng.integers(0, 9, 20),
                    },
                )
                engine.run_until_idle()
            return query.result_rows()

        default = run()
        # A capacity the workload never exceeds must not change anything.
        roomy = run(capacity=10_000, overflow=Block(timeout=1.0))
        assert default == roomy
        assert default  # sanity: windows actually fired


class TestEngineWiring:
    def _overloaded_engine(self, policy):
        engine = DataCellEngine()
        engine.create_stream(
            "s", [("x1", "int"), ("x2", "int")], capacity=30, overflow=policy
        )
        query = engine.submit(
            "SELECT x1, count(*) FROM s [RANGE 20 SLIDE 10] GROUP BY x1"
        )
        return engine, query

    def test_shed_surfaces_in_engine_profiler(self):
        engine, query = self._overloaded_engine(ShedOldest())
        rng = np.random.default_rng(1)
        for __ in range(4):
            engine.feed(
                "s",
                columns={
                    "x1": rng.integers(0, 3, 50),
                    "x2": rng.integers(0, 9, 50),
                },
            )
        engine.run_until_idle()
        assert engine.profiler.counter(COUNTER_SHED) > 0
        stats = engine.overload_stats()["s"]
        assert stats["shed"] > 0
        assert stats["capacity"] == 30
        assert stats["max_parked"] <= 30

    def test_shedding_stream_disables_fragment_sharing(self):
        engine, query = self._overloaded_engine(ShedOldest())
        assert not query.factory.shares_fragments

    def test_non_shedding_stream_keeps_sharing(self):
        engine = DataCellEngine()
        engine.create_stream(
            "s", [("x1", "int"), ("x2", "int")],
            capacity=1000, overflow=Block(timeout=0.1),
        )
        query = engine.submit(
            "SELECT x1, count(*) FROM s [RANGE 20 SLIDE 10] GROUP BY x1"
        )
        assert query.factory.shares_fragments

    def test_partial_fanout_failure_demotes_sharing(self):
        """A Fail raise partway through feed's fan-out leaves baskets
        diverged, so the whole stream drops out of fragment sharing —
        including queries submitted afterwards."""
        engine = DataCellEngine()
        engine.create_stream("s", [("x1", "int"), ("x2", "int")], capacity=30)
        sql = "SELECT x1, count(*) FROM s [RANGE 20 SLIDE 10] GROUP BY x1"
        q1 = engine.submit(sql)
        q2 = engine.submit(sql)
        assert q1.factory.shares_fragments and q2.factory.shares_fragments
        # Fill only q2's basket directly so the next fan-out admits into
        # q1's basket (25 of 30) and then overflows q2's (25 + 25 > 30).
        columns = {"x1": np.zeros(25, dtype=np.int64),
                   "x2": np.zeros(25, dtype=np.int64)}
        next(iter(q2.baskets.values())).append_columns(columns)
        with pytest.raises(BasketOverflowError):
            engine.feed("s", columns=columns)
        assert not q1.factory.shares_fragments
        assert not q2.factory.shares_fragments
        q3 = engine.submit(sql)
        assert not q3.factory.shares_fragments

    def test_policy_template_cloned_per_basket(self):
        engine = DataCellEngine()
        template = Sample(0.5, seed=9)
        engine.create_stream(
            "s", [("x1", "int"), ("x2", "int")], capacity=10, overflow=template
        )
        q1 = engine.submit("SELECT x1, count(*) FROM s [RANGE 4 SLIDE 2] GROUP BY x1")
        q2 = engine.submit("SELECT x2, count(*) FROM s [RANGE 4 SLIDE 2] GROUP BY x2")
        policies = {
            id(basket.overflow_policy)
            for query in (q1, q2)
            for basket in query.baskets.values()
        }
        assert len(policies) == 2
        assert id(template) not in policies

    def test_overflow_without_capacity_rejected(self):
        engine = DataCellEngine()
        with pytest.raises(ReproError):
            engine.create_stream("s", [("x1", "int")], overflow=ShedOldest())


class TestParseOverflowSpec:
    @pytest.mark.parametrize(
        "spec, expected",
        [
            ("fail", Fail),
            ("block", Block),
            ("block:0.5", Block),
            ("shed-oldest", ShedOldest),
            ("shed_oldest", ShedOldest),
            ("SHED-NEWEST", ShedNewest),
            ("sample:0.25", Sample),
            ("sample:0.25:7", Sample),
        ],
    )
    def test_valid_specs(self, spec, expected):
        assert isinstance(parse_overflow_spec(spec), expected)

    def test_parameters_carried(self):
        assert parse_overflow_spec("block:0.5").timeout == 0.5
        policy = parse_overflow_spec("sample:0.25:7")
        assert policy.rate == 0.25
        assert policy.seed == 7

    @pytest.mark.parametrize(
        "spec", ["", "nope", "sample", "block:x", "fail:1", "shed-oldest:2"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ReproError):
            parse_overflow_spec(spec)

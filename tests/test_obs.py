"""Tests for the observability layer (spans, histograms, metrics export).

Covers the repro.obs package in isolation (ring buffer, log-scale
histogram math) and end-to-end through the engine: ``engine.metrics()``
content, Prometheus text exposition (validated with a mini-parser), JSON
round-trip, the ``repro top`` / ``repro trace`` renderers, and the
console/CLI surfaces.
"""

import io
import json
import math

import numpy as np
import pytest

from repro.cli import Console
from repro.core.engine import DataCellEngine
from repro.errors import ReproError
from repro.obs import FiringSpan, LogHistogram, SpanRecorder
from repro.obs.console import render_top, render_trace
from repro.obs.hist import BUCKETS, bucket_index, bucket_upper


def span(seq, factory="q1", duration=0.001, **kw):
    defaults = dict(
        factory=factory,
        seq=seq,
        wall=1_700_000_000.0 + seq,
        duration=duration,
        consumed=20,
        emitted=5,
        ready_wait=0.0001,
        tags={"main": 0.0005, "merge": 0.0003},
    )
    defaults.update(kw)
    return FiringSpan(**defaults)


def fed_engine(**engine_kw):
    """An engine with one query that has fired four times."""
    engine = DataCellEngine(**engine_kw)
    engine.create_stream("s", [("x1", "int"), ("x2", "int")])
    engine.submit(
        "SELECT x1, sum(x2) FROM s [RANGE 40 SLIDE 20] GROUP BY x1 ORDER BY x1"
    )
    rng = np.random.default_rng(7)
    engine.feed(
        "s",
        columns={"x1": rng.integers(0, 5, 100), "x2": rng.integers(0, 9, 100)},
    )
    engine.run_until_idle()
    return engine


class TestSpanRecorder:
    def test_records_in_order(self):
        ring = SpanRecorder(capacity=8)
        for seq in range(3):
            ring.record(span(seq))
        assert [s.seq for s in ring.last()] == [0, 1, 2]
        assert len(ring) == 3
        assert ring.total == 3
        assert ring.dropped == 0

    def test_bounded_evicts_oldest(self):
        ring = SpanRecorder(capacity=4)
        for seq in range(10):
            ring.record(span(seq))
        assert [s.seq for s in ring.last()] == [6, 7, 8, 9]
        assert ring.total == 10
        assert ring.dropped == 6

    def test_last_n(self):
        ring = SpanRecorder(capacity=8)
        for seq in range(5):
            ring.record(span(seq))
        assert [s.seq for s in ring.last(2)] == [3, 4]

    def test_clear(self):
        ring = SpanRecorder(capacity=4)
        ring.record(span(0))
        ring.clear()
        assert len(ring) == 0 and ring.last() == []

    def test_spans_are_frozen(self):
        record = span(0)
        with pytest.raises(AttributeError):
            record.seq = 99


class TestLogHistogram:
    def test_bucket_index_brackets_value(self):
        for seconds in (1e-6, 3e-4, 0.001, 0.7, 1.0, 2.0, 63.0):
            index = bucket_index(seconds)
            assert seconds <= bucket_upper(index)
            if index > 0:
                assert seconds > bucket_upper(index - 1)

    def test_exact_powers_of_two_land_on_their_upper_bound(self):
        # frexp(2^k) reports exponent k+1; the index must compensate so
        # that 2^k falls in the bucket whose upper bound *is* 2^k.
        for k in (-10, -3, 0, 2):
            seconds = math.ldexp(1.0, k)
            assert bucket_upper(bucket_index(seconds)) == seconds

    def test_overflow_bucket(self):
        assert bucket_index(1e9) == BUCKETS
        assert math.isinf(bucket_upper(BUCKETS))

    def test_quantiles_interpolate(self):
        hist = LogHistogram()
        for __ in range(100):
            hist.observe(0.001)
        q = hist.quantile(0.5)
        assert 0.0005 < q <= 0.00101  # clamped to the observed max
        assert hist.quantile(0.0) >= hist.min
        assert hist.quantile(1.0) <= hist.max

    def test_quantiles_order(self):
        hist = LogHistogram()
        rng = np.random.default_rng(3)
        for value in rng.lognormal(mean=-7, sigma=1.0, size=500):
            hist.observe(float(value))
        snap = hist.snapshot()
        assert snap["count"] == 500
        assert snap["min"] <= snap["p50"] <= snap["p95"] <= snap["p99"] <= snap["max"]

    def test_empty_snapshot(self):
        snap = LogHistogram().snapshot()
        assert snap["count"] == 0 and snap["p99"] == 0.0

    def test_cumulative_buckets_monotone(self):
        hist = LogHistogram()
        for value in (1e-6, 1e-4, 0.01, 0.5, 100.0):
            hist.observe(value)
        pairs = hist.buckets()
        assert len(pairs) == BUCKETS + 1
        counts = [count for __, count in pairs]
        assert counts == sorted(counts)
        assert counts[-1] == hist.count  # +Inf bucket sees everything
        assert math.isinf(pairs[-1][0])

    def test_merge_from(self):
        a, b = LogHistogram(), LogHistogram()
        a.observe(0.001)
        b.observe(0.1)
        a.merge_from(b)
        assert a.count == 2 and a.max == 0.1


class TestEngineMetrics:
    def test_dict_snapshot_content(self):
        engine = fed_engine()
        metrics = engine.metrics()
        assert metrics["counters"]["firings"] == 4
        assert metrics["counters"]["tuples_consumed"] == 100
        assert metrics["counters"]["rows_emitted"] > 0
        assert metrics["counters"]["overflow_shed"] == 0
        assert metrics["counters"]["worker_errors"] == 0
        assert metrics["factories"]["q1"]["firings"] == 4
        assert metrics["streams"]["s"]["baskets"] == 1
        assert "hit_rate" in metrics["fragment_cache"]
        # ingest→emit latency quantiles are present and ordered
        latency = metrics["latency"]
        assert latency["count"] >= 1
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]
        assert metrics["firing_duration"]["count"] == 4
        assert metrics["spans"]["recorded"] == 4
        assert metrics["opcodes"]  # per-opcode histograms fed by the profiler

    def test_main_merge_breakdown_in_spans(self):
        engine = fed_engine()
        spans = engine.obs.spans.last()
        assert len(spans) == 4
        # incremental firings run both the main plan and the merge step
        tagged = [s for s in spans if "main" in s.tags and "merge" in s.tags]
        assert tagged, "expected per-tag breakdown on spans"
        assert all(s.factory == "q1" for s in spans)
        assert [s.seq for s in spans] == [1, 2, 3, 4]

    def test_disabled_observability(self):
        engine = fed_engine(observability=False)
        assert engine.obs is None
        metrics = engine.metrics()
        assert metrics["engine"]["observability"] is False
        assert "latency" not in metrics and "spans" not in metrics
        # plain counters still work without tracing
        assert metrics["counters"]["firings"] == 4
        assert metrics["counters"]["tuples_consumed"] == 0  # not tracked

    def test_json_format_round_trips(self):
        engine = fed_engine()
        decoded = json.loads(engine.metrics(format="json"))
        assert decoded["counters"]["firings"] == 4

    def test_unknown_format_rejected(self):
        with pytest.raises(ReproError):
            fed_engine().metrics(format="xml")


def parse_prometheus(text):
    """Mini-parser for the text exposition format.

    Returns ``(samples, types)`` where samples maps ``name{labels}`` to a
    float and types maps family name to its declared type.  Raises on any
    line that is not a comment, a blank, or ``name{labels} value``.
    """
    samples, types = {}, {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            __, __, family, kind = line.split(None, 3)
            types[family] = kind
            continue
        if line.startswith("#"):
            assert line.startswith("# HELP "), f"bad comment: {line!r}"
            continue
        name_part, __, value_part = line.rpartition(" ")
        assert name_part, f"unparsable sample line: {line!r}"
        samples[name_part] = float(value_part)
    return samples, types


class TestPrometheusExport:
    def test_output_parses_and_has_families(self):
        engine = fed_engine()
        samples, types = parse_prometheus(engine.metrics(format="prometheus"))
        assert samples["repro_firings_total"] == 4
        assert types["repro_firings_total"] == "counter"
        assert types["repro_ingest_emit_latency_seconds"] == "histogram"
        assert samples['repro_factory_firings_total{factory="q1"}'] == 4
        assert samples['repro_basket_parked{stream="s"}'] == 0
        assert samples["repro_worker_errors_total"] == 0

    def test_histogram_buckets_cumulative_with_inf(self):
        engine = fed_engine()
        samples, __ = parse_prometheus(engine.metrics(format="prometheus"))
        buckets = sorted(
            (name, value)
            for name, value in samples.items()
            if name.startswith("repro_firing_duration_seconds_bucket")
        )
        assert any('le="+Inf"' in name for name, __ in buckets)
        inf = next(v for n, v in buckets if 'le="+Inf"' in n)
        assert inf == samples["repro_firing_duration_seconds_count"] == 4
        assert samples["repro_firing_duration_seconds_sum"] > 0

    def test_disabled_engine_skips_histograms(self):
        engine = fed_engine(observability=False)
        samples, __ = parse_prometheus(engine.metrics(format="prometheus"))
        assert "repro_firings_total" in samples
        assert not any("latency" in name for name in samples)


class TestConsoleRenderers:
    def test_top_table(self):
        engine = fed_engine()
        text = render_top(engine)
        assert "firings=4" in text
        assert "FACTORY" in text and "LAG ms" in text
        assert "q1" in text
        assert "ingest→emit latency" in text

    def test_top_without_observability(self):
        text = render_top(fed_engine(observability=False))
        assert "firings=4" in text
        assert "latency" not in text

    def test_trace_lists_recent_spans(self):
        engine = fed_engine()
        text = render_trace(engine, last=2)
        assert "#3" in text and "#4" in text and "#2" not in text
        assert "main=" in text and "merge=" in text
        assert "2 span(s) shown, 4 recorded" in text

    def test_trace_disabled_and_empty(self):
        assert "disabled" in render_trace(DataCellEngine(observability=False))
        assert "no spans" in render_trace(DataCellEngine())


def run_console(lines):
    console = Console(out=io.StringIO())
    for line in lines:
        console.execute(line)
    return console, console.out.getvalue()


class TestConsoleCommands:
    SETUP = [
        "CREATE STREAM s (x1 int)",
        "SUBMIT SELECT count(*) AS n FROM s [RANGE 2 SLIDE 2]",
    ]

    def test_top_command(self):
        console, __ = run_console(self.SETUP)
        console.engine.feed("s", rows=[(1,), (2,)])
        console.execute("RUN")
        console.execute("TOP")
        out = console.out.getvalue()
        assert "FACTORY" in out and "q1" in out

    def test_trace_command_with_count(self):
        console, __ = run_console(self.SETUP)
        console.engine.feed("s", rows=[(i,) for i in range(6)])
        console.execute("RUN")
        console.execute("TRACE 2")
        out = console.out.getvalue()
        assert "2 span(s) shown, 3 recorded" in out

    def test_metrics_command_prom_and_json(self):
        console, __ = run_console(self.SETUP)
        console.execute("METRICS")
        console.execute("METRICS JSON")
        out = console.out.getvalue()
        assert "# TYPE repro_firings_total counter" in out
        assert '"firings": 0' in out

    def test_metrics_command_rejects_garbage(self):
        __, out = run_console(["METRICS XML"])
        assert "error" in out


class TestObsSubcommands:
    def write_script(self, tmp_path):
        script = tmp_path / "session.dcl"
        script.write_text(
            "CREATE STREAM s (x1 int)\n"
            "SUBMIT SELECT count(*) AS n FROM s [RANGE 2 SLIDE 2]\n"
        )
        return str(script)

    def test_top_once(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["top", "--once", self.write_script(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "FACTORY" in out and "q1" in out

    def test_trace_last(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", "--last", "5", self.write_script(tmp_path)]) == 0
        assert "no spans" in capsys.readouterr().out

    def test_bad_flags_exit_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["top", "--interval", "0"]) == 2
        assert main(["trace", "--last", "nope"]) == 2
        assert main(["top", "--frobnicate"]) == 2
        assert "error:" in capsys.readouterr().err

"""Unit tests for the logical planner."""

import pytest

from repro.errors import PlanError
from repro.kernel.atoms import Atom
from repro.sql.ast import BinOp, ColumnRef, Literal
from repro.sql.logical import (
    LAggregate,
    LDistinct,
    LFilter,
    LJoin,
    LLimit,
    LOrder,
    LProject,
    LScan,
    find_scans,
    pretty_plan,
    stream_scans,
)
from repro.sql.planner import and_together, plan_query, split_conjuncts


class TestConjunctUtilities:
    def test_split(self):
        expr = BinOp(
            "and",
            BinOp("and", Literal(True), Literal(False)),
            Literal(True),
        )
        assert len(split_conjuncts(expr)) == 3
        assert split_conjuncts(None) == []

    def test_and_together_roundtrip(self):
        parts = [Literal(1), Literal(2), Literal(3)]
        rebuilt = and_together(parts)
        assert split_conjuncts(rebuilt) == parts
        assert and_together([]) is None


class TestSingleStreamPlans:
    def test_select_only(self, catalog):
        planned = plan_query("SELECT x1, x1 + x2 FROM s WHERE x1 > 3", catalog)
        plan = planned.plan
        assert isinstance(plan, LProject)
        assert isinstance(plan.child, LFilter)
        assert isinstance(plan.child.child, LScan)

    def test_grouped_aggregate(self, catalog):
        planned = plan_query(
            "SELECT x1, sum(x2) FROM s WHERE x1 > 3 GROUP BY x1", catalog
        )
        project = planned.plan
        assert isinstance(project, LProject)
        agg = project.child
        assert isinstance(agg, LAggregate)
        assert agg.aggs[0].func == "sum"
        assert agg.key_atoms == [Atom.INT]
        # select items rewritten to synthetic columns
        assert project.items[0][0] == ColumnRef(None, "key_0")
        assert project.items[1][0] == ColumnRef(None, "agg_0")

    def test_global_aggregate(self, catalog):
        planned = plan_query("SELECT max(x1), avg(x2) FROM s", catalog)
        agg = planned.plan.child
        assert isinstance(agg, LAggregate)
        assert agg.keys == []
        assert [a.func for a in agg.aggs] == ["max", "avg"]

    def test_duplicate_aggregates_shared(self, catalog):
        planned = plan_query("SELECT sum(x2), sum(x2) + 1 FROM s", catalog)
        agg = planned.plan.child
        assert len(agg.aggs) == 1

    def test_having_becomes_filter(self, catalog):
        planned = plan_query(
            "SELECT x1 FROM s GROUP BY x1 HAVING count(*) > 2", catalog
        )
        assert isinstance(planned.plan, LProject)
        having = planned.plan.child
        assert isinstance(having, LFilter)
        assert isinstance(having.child, LAggregate)
        # count(*) was added as a hidden aggregate
        assert having.child.aggs[0].func == "count"

    def test_order_limit_distinct(self, catalog):
        planned = plan_query(
            "SELECT DISTINCT x1 FROM s ORDER BY x1 DESC LIMIT 5", catalog
        )
        limit = planned.plan
        assert isinstance(limit, LLimit) and limit.count == 5
        order = limit.child
        assert isinstance(order, LOrder) and order.keys == [("x1", True)]
        assert isinstance(order.child, LDistinct)

    def test_order_by_aggregate(self, catalog):
        planned = plan_query(
            "SELECT x1, sum(x2) AS t FROM s GROUP BY x1 ORDER BY t DESC", catalog
        )
        order = planned.plan
        assert isinstance(order, LOrder)
        assert order.keys == [("t", True)]

    def test_order_by_unprojected_expression_rejected(self, catalog):
        with pytest.raises(PlanError):
            plan_query("SELECT x1 FROM s ORDER BY x2", catalog)

    def test_non_grouped_column_rejected(self, catalog):
        with pytest.raises(PlanError):
            plan_query("SELECT x2, sum(x1) FROM s GROUP BY x1", catalog)

    def test_having_without_grouping_rejected(self, catalog):
        with pytest.raises(PlanError):
            plan_query("SELECT x1 FROM s HAVING x1 > 2", catalog)


class TestJoinPlans:
    def test_join_structure(self, catalog):
        planned = plan_query(
            "SELECT max(s1.x1) FROM s s1, s2 WHERE s1.x2 = s2.x2 AND s1.x1 > 2",
            catalog,
        )
        agg = planned.plan.child
        join = agg.child
        assert isinstance(join, LJoin)
        # pushed-down selection sits on the left side
        assert isinstance(join.left, LFilter)
        assert isinstance(join.right, LScan)
        assert join.left_key == ColumnRef("s1", "x2")

    def test_join_key_orientation_swapped(self, catalog):
        planned = plan_query(
            "SELECT max(s1.x1) FROM s s1, s2 WHERE s2.x2 = s1.x2", catalog
        )
        join = planned.plan.child.child
        assert planned.binding.resolve(join.left_key).alias == "s1"

    def test_residual_predicate_above_join(self, catalog):
        planned = plan_query(
            "SELECT count(*) FROM s s1, s2 "
            "WHERE s1.x2 = s2.x2 AND s1.x1 > s2.x1",
            catalog,
        )
        agg = planned.plan.child
        residual = agg.child
        assert isinstance(residual, LFilter)
        assert isinstance(residual.child, LJoin)

    def test_missing_join_predicate_rejected(self, catalog):
        with pytest.raises(PlanError):
            plan_query("SELECT count(*) FROM s s1, s2 WHERE s1.x1 > 2", catalog)

    def test_three_relations_rejected(self, catalog):
        with pytest.raises(PlanError):
            plan_query(
                "SELECT count(*) FROM s a, s2 b, t c "
                "WHERE a.x1 = b.x1 AND b.x1 = c.k",
                catalog,
            )


class TestPlanHelpers:
    def test_find_scans_and_streams(self, catalog):
        planned = plan_query(
            "SELECT count(*) FROM s s1, ref WHERE s1.x2 = ref.x2", catalog
        )
        scans = find_scans(planned.plan)
        assert {s.alias for s in scans} == {"s1", "ref"}
        assert [s.alias for s in stream_scans(planned.plan)] == ["s1"]

    def test_pretty_plan_mentions_operators(self, catalog):
        planned = plan_query(
            "SELECT x1, sum(x2) FROM s WHERE x1 > 3 GROUP BY x1", catalog
        )
        text = pretty_plan(planned.plan)
        assert "Project" in text
        assert "Aggregate" in text
        assert "Filter" in text
        assert "Scan[stream]" in text

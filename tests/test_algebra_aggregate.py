"""Unit and property tests for aggregation operators."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import KernelError, TypeMismatchError
from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT
from repro.kernel.algebra.aggregate import (
    subavg,
    subcount,
    submax,
    submin,
    subsum,
    total_avg,
    total_count,
    total_max,
    total_min,
    total_sum,
)
from repro.kernel.algebra.group import group

from conftest import flt_bat, int_bat, str_bat


class TestGlobalAggregates:
    def test_sum_int(self):
        assert total_sum(int_bat([1, 2, 3])) == 6
        assert isinstance(total_sum(int_bat([1])), int)

    def test_sum_flt(self):
        assert total_sum(flt_bat([0.5, 1.5])) == pytest.approx(2.0)

    def test_sum_empty_is_null(self):
        assert total_sum(BAT.empty(Atom.INT)) is None

    def test_sum_rejects_strings(self):
        with pytest.raises(TypeMismatchError):
            total_sum(str_bat(["a"]))

    def test_count(self):
        assert total_count(int_bat([1, 2])) == 2
        assert total_count(BAT.empty(Atom.INT)) == 0

    def test_min_max(self):
        b = int_bat([4, 1, 9])
        assert total_min(b) == 1
        assert total_max(b) == 9

    def test_min_max_strings(self):
        b = str_bat(["pear", "apple"])
        assert total_min(b) == "apple"
        assert total_max(b) == "pear"

    def test_min_max_empty(self):
        assert total_min(BAT.empty(Atom.INT)) is None
        assert total_max(BAT.empty(Atom.INT)) is None

    def test_avg(self):
        assert total_avg(int_bat([1, 2, 3, 4])) == pytest.approx(2.5)
        assert total_avg(BAT.empty(Atom.FLT)) is None


class TestGroupedAggregates:
    def _grouping(self):
        keys = int_bat([2, 1, 2, 1, 3])
        vals = int_bat([10, 20, 30, 40, 50])
        g = group([keys])
        return g, vals

    def test_subsum(self):
        g, vals = self._grouping()
        assert subsum(vals, g.gids, g.ngroups).to_list() == [60, 40, 50]

    def test_subcount(self):
        g, vals = self._grouping()
        assert subcount(vals, g.gids, g.ngroups).to_list() == [2, 2, 1]

    def test_submin_submax(self):
        g, vals = self._grouping()
        assert submin(vals, g.gids, g.ngroups).to_list() == [20, 10, 50]
        assert submax(vals, g.gids, g.ngroups).to_list() == [40, 30, 50]

    def test_subavg(self):
        g, vals = self._grouping()
        assert subavg(vals, g.gids, g.ngroups).to_list() == pytest.approx([30.0, 20.0, 50.0])

    def test_submin_strings(self):
        keys = int_bat([0, 1, 0])
        vals = str_bat(["b", "x", "a"])
        g = group([keys])
        assert submin(vals, g.gids, g.ngroups).to_list() == ["a", "x"]
        assert submax(vals, g.gids, g.ngroups).to_list() == ["b", "x"]

    def test_subsum_float(self):
        keys = int_bat([0, 0, 1])
        vals = flt_bat([1.5, 2.5, 3.0])
        g = group([keys])
        assert subsum(vals, g.gids, g.ngroups).to_list() == pytest.approx([4.0, 3.0])

    def test_misaligned_lengths_raise(self):
        with pytest.raises(KernelError):
            subsum(int_bat([1, 2]), int_bat([0]), 1)

    def test_empty_groups(self):
        g = group([BAT.empty(Atom.INT)])
        out = subsum(BAT.empty(Atom.INT), g.gids, g.ngroups)
        assert out.to_list() == []

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(-100, 100)), max_size=80
        )
    )
    def test_subsum_matches_python(self, rows):
        keys = int_bat([k for k, __ in rows])
        vals = int_bat([v for __, v in rows])
        g = group([keys])
        got = subsum(vals, g.gids, g.ngroups).to_list()
        expected: dict[int, int] = {}
        for k, v in rows:
            expected[k] = expected.get(k, 0) + v
        assert got == [expected[k] for k in sorted(expected)]

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(-100, 100)), min_size=1, max_size=80
        )
    )
    def test_submin_submax_match_python(self, rows):
        keys = int_bat([k for k, __ in rows])
        vals = int_bat([v for __, v in rows])
        g = group([keys])
        mins: dict[int, int] = {}
        maxs: dict[int, int] = {}
        for k, v in rows:
            mins[k] = min(mins.get(k, v), v)
            maxs[k] = max(maxs.get(k, v), v)
        order = sorted(mins)
        assert submin(vals, g.gids, g.ngroups).to_list() == [mins[k] for k in order]
        assert submax(vals, g.gids, g.ngroups).to_list() == [maxs[k] for k in order]

"""Property-based cross-engine equivalence (the DESIGN.md invariant).

For random streams and window geometries, at every slide the results of

1. the incremental DataCell factory (plan rewriting),
2. full re-evaluation (DataCellR),
3. the SystemX tuple-at-a-time engine, and
4. a naive Python reference

must agree.  This is the strongest end-to-end guarantee in the suite: it
exercises the rewriter's split/replicate/merge/transition machinery against
three independent implementations.
"""

import collections

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import DataCellEngine
from repro.dsms import SystemX
from repro.kernel.atoms import Atom
from repro.kernel.storage import Schema

from conftest import assert_rows_equal


def make_engines():
    engine = DataCellEngine()
    engine.create_stream("s", [("x1", "int"), ("x2", "int")])
    engine.create_stream("s2", [("x1", "int"), ("x2", "int")])
    systemx = SystemX()
    systemx.create_stream("s", Schema.of(("x1", Atom.INT), ("x2", Atom.INT)))
    systemx.create_stream("s2", Schema.of(("x1", Atom.INT), ("x2", Atom.INT)))
    return engine, systemx


def run_all_engines(sql, feeds, float_tol=1e-7):
    """Returns the per-window rows from all three engines, asserted equal."""
    engine, systemx = make_engines()
    qi = engine.submit(sql, mode="incremental")
    qr = engine.submit(sql, mode="reeval")
    xq = systemx.submit(sql)
    for stream, (x1, x2) in feeds:
        engine.feed("s" if stream == "s" else "s2", columns={"x1": x1, "x2": x2})
        systemx.push_many(stream, zip(x1.tolist(), x2.tolist()))
    engine.run_until_idle()
    incr = [[tuple(r) for r in batch.rows()] for batch in qi.results()]
    reev = [[tuple(r) for r in batch.rows()] for batch in qr.results()]
    sysx = [[tuple(r) for r in rows] for rows in xq.results]
    assert len(incr) == len(reev) == len(sysx)
    for a, b in zip(incr, reev):
        assert_rows_equal(a, b, float_tol)
    for a, c in zip(incr, sysx):
        assert_rows_equal(a, c, float_tol)
    return incr


window_geometry = st.sampled_from(
    [(10, 5), (12, 3), (20, 4), (8, 8), (30, 10), (16, 2)]
)

stream_data = st.integers(30, 120).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.integers(0, 2**31 - 1),
        st.integers(2, 12),  # x1 domain
        st.integers(2, 10),  # x2 domain
    )
)


def columns_from(spec):
    count, seed, domain1, domain2 = spec
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, domain1, count).astype(np.int64),
        rng.integers(0, domain2, count).astype(np.int64),
    )


common = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSingleStreamEquivalence:
    @common
    @given(window_geometry, stream_data, st.integers(0, 8))
    def test_grouped_sum(self, geometry, spec, threshold):
        size, step = geometry
        x1, x2 = columns_from(spec)
        sql = (
            f"SELECT x1, sum(x2) FROM s [RANGE {size} SLIDE {step}] "
            f"WHERE x1 > {threshold} GROUP BY x1 ORDER BY x1"
        )
        windows = run_all_engines(sql, [("s", (x1, x2))])
        # also check against the Python reference
        for k, rows in enumerate(windows):
            lo, hi = k * step, k * step + size
            expected: dict[int, int] = collections.defaultdict(int)
            for a, b in zip(x1[lo:hi], x2[lo:hi]):
                if a > threshold:
                    expected[int(a)] += int(b)
            assert rows == sorted(expected.items())

    @common
    @given(window_geometry, stream_data)
    def test_global_aggregates(self, geometry, spec):
        size, step = geometry
        x1, x2 = columns_from(spec)
        sql = (
            f"SELECT min(x1), max(x1), count(*), avg(x2) "
            f"FROM s [RANGE {size} SLIDE {step}] WHERE x1 > 3"
        )
        run_all_engines(sql, [("s", (x1, x2))])

    @common
    @given(window_geometry, stream_data)
    def test_select_only(self, geometry, spec):
        size, step = geometry
        x1, x2 = columns_from(spec)
        sql = f"SELECT x1, x2 FROM s [RANGE {size} SLIDE {step}] WHERE x1 > 6"
        run_all_engines(sql, [("s", (x1, x2))])

    @common
    @given(st.integers(3, 20), stream_data)
    def test_landmark_sum(self, step, spec):
        x1, x2 = columns_from(spec)
        sql = f"SELECT sum(x2), count(*) FROM s [LANDMARK SLIDE {step}] WHERE x1 > 2"
        run_all_engines(sql, [("s", (x1, x2))])


class TestJoinEquivalence:
    @common
    @given(
        st.sampled_from([(10, 5), (20, 4), (12, 6)]),
        stream_data,
        stream_data,
        st.integers(0, 6),
    )
    def test_join_aggregates(self, geometry, left_spec, right_spec, threshold):
        size, step = geometry
        a1, a2 = columns_from(left_spec)
        b1, b2 = columns_from(right_spec)
        sql = (
            f"SELECT max(s1.x1), avg(s2.x1), count(*) "
            f"FROM s s1 [RANGE {size} SLIDE {step}], s2 [RANGE {size} SLIDE {step}] "
            f"WHERE s1.x2 = s2.x2 AND s1.x1 > {threshold}"
        )
        run_all_engines(sql, [("s", (a1, a2)), ("s2", (b1, b2))])

    @common
    @given(st.sampled_from([(10, 5), (16, 4)]), stream_data, stream_data)
    def test_join_grouped(self, geometry, left_spec, right_spec):
        size, step = geometry
        a1, a2 = columns_from(left_spec)
        b1, b2 = columns_from(right_spec)
        sql = (
            f"SELECT s1.x1, count(*), sum(s2.x1) "
            f"FROM s s1 [RANGE {size} SLIDE {step}], s2 [RANGE {size} SLIDE {step}] "
            f"WHERE s1.x2 = s2.x2 GROUP BY s1.x1 ORDER BY s1.x1"
        )
        run_all_engines(sql, [("s", (a1, a2)), ("s2", (b1, b2))])


class TestChunkedEquivalence:
    @common
    @given(
        st.sampled_from([(12, 6), (20, 10), (16, 8)]),
        stream_data,
        st.integers(1, 10),
    )
    def test_chunked_stepping_equals_plain(self, geometry, spec, m):
        size, step = geometry
        x1, x2 = columns_from(spec)
        sql = (
            f"SELECT x1, sum(x2) FROM s [RANGE {size} SLIDE {step}] "
            f"GROUP BY x1 ORDER BY x1"
        )
        engine, __ = make_engines()
        q_plain = engine.submit(sql)
        q_chunk = engine.submit(sql)
        engine.feed("s", columns={"x1": x1, "x2": x2})
        plain, chunked = [], []
        while q_plain.factory.ready():
            plain.append(q_plain.factory.step().rows())
        while q_chunk.factory.ready():
            chunked.append(q_chunk.factory.step_chunked(m).rows())
        assert plain == chunked

"""Plan verifier: positive coverage of every rewrite shape, plus negative
tests proving distinct corrupted-plan classes are rejected with actionable
diagnostics."""

import copy
import dataclasses

import pytest

from repro import DataCellEngine
from repro.analysis import check_plan, verify_plan
from repro.core.rewriter import rewrite
from repro.core.rewriter.flows import Flow
from repro.errors import PlanVerificationError
from repro.kernel.atoms import Atom
from repro.kernel.execution.program import Instr, Ref
from repro.sql.logical import find_scans
from repro.sql.optimizer import optimize
from repro.sql.planner import plan_query


def make_engine():
    engine = DataCellEngine()
    engine.create_stream("s", [("x1", "int"), ("x2", "float")])
    engine.create_stream("s2", [("y1", "int"), ("y2", "int")])
    engine.create_table("t", [("k", "int"), ("v", "float")])
    return engine


def build(sql):
    engine = make_engine()
    planned = optimize(plan_query(sql, engine.catalog))
    schemas = {}
    for scan in find_scans(planned.plan):
        relation = (
            engine.catalog.stream(scan.relation)
            if scan.is_stream
            else engine.catalog.table(scan.relation)
        )
        schemas[scan.alias] = dict(relation.schema.columns)
    return rewrite(planned), schemas


def assert_clean(sql):
    plan, schemas = build(sql)
    report = verify_plan(plan, schemas)
    assert report.ok, report.render()
    check_plan(plan, schemas)  # must not raise
    return plan, schemas


# ----------------------------------------------------------------------
# positive: every rewrite shape verifies clean
# ----------------------------------------------------------------------
def test_single_stream_global_aggregation():
    plan, __ = assert_clean(
        "SELECT sum(x1) AS total, avg(x2) AS mean, count(*) AS n "
        "FROM s [RANGE 100 SLIDE 10]"
    )
    assert plan.fragment is not None and not plan.is_join


def test_single_stream_grouped_aggregation():
    plan, __ = assert_clean(
        "SELECT x1, min(x2), max(x2) FROM s [RANGE 64 SLIDE 8] "
        "WHERE x1 > 2 GROUP BY x1"
    )
    assert plan.grouped


def test_select_only_pack_flows():
    plan, __ = assert_clean(
        "SELECT x1, x2 FROM s [RANGE 16 SLIDE 4] WHERE x1 > 3"
    )
    assert all(flow.kind == "pack" for flow in plan.flows)


def test_stream_stream_join_pair_fragments():
    plan, __ = assert_clean(
        "SELECT max(a.x1), count(*) FROM s a [RANGE 32 SLIDE 4], "
        "s2 b [RANGE 32 SLIDE 4] WHERE a.x1 = b.y1"
    )
    assert plan.is_join and set(plan.preps) == {"a", "b"}


def test_stream_table_join():
    plan, __ = assert_clean(
        "SELECT sum(s.x1) FROM s [RANGE 16 SLIDE 8], t WHERE s.x1 = t.k"
    )
    assert plan.is_join and plan.table_alias == "t"


def test_landmark_window():
    assert_clean("SELECT sum(x1), count(*) FROM s [LANDMARK SLIDE 10]")


def test_time_based_window():
    assert_clean("SELECT avg(x2) FROM s [RANGE 10 SECONDS SLIDE 5 SECONDS]")


def test_verifies_without_schemas_too():
    plan, __ = build("SELECT x1, count(*) FROM s [RANGE 8 SLIDE 4] GROUP BY x1")
    assert verify_plan(plan).ok  # type checks degrade to unknown atoms


# ----------------------------------------------------------------------
# negative: distinct corruption classes, each with actionable diagnostics
# ----------------------------------------------------------------------
def errors_of(plan, schemas=None):
    return [d.message for d in verify_plan(plan, schemas).errors()]


def test_rejects_dangling_slot_reference():
    plan, schemas = build("SELECT sum(x1) FROM s [RANGE 10 SLIDE 5]")
    instr = plan.fragment.instructions[0]
    plan.fragment.instructions[0] = dataclasses.replace(
        instr, args=(Ref("no_such_slot"),)
    )
    messages = errors_of(plan, schemas)
    assert any("reads slot 'no_such_slot' before any definition" in m for m in messages)


def test_rejects_wrong_cost_tag():
    plan, schemas = build("SELECT sum(x1) FROM s [RANGE 10 SLIDE 5]")
    instr = plan.combine.instructions[0]
    plan.combine.instructions[0] = dataclasses.replace(instr, tag="main")
    messages = errors_of(plan, schemas)
    assert any("must be tagged admin or merge" in m for m in messages)


def test_rejects_illegal_cost_tag():
    plan, schemas = build("SELECT sum(x1) FROM s [RANGE 10 SLIDE 5]")
    instr = plan.fragment.instructions[0]
    plan.fragment.instructions[0] = dataclasses.replace(instr, tag="bogus")
    messages = errors_of(plan, schemas)
    assert any("illegal cost tag 'bogus'" in m for m in messages)


def test_rejects_dropped_avg_count_flow():
    plan, schemas = build("SELECT avg(x2) FROM s [RANGE 10 SLIDE 5]")
    plan.flows = [f for f in plan.flows if not f.name.endswith("__cnt")]
    messages = errors_of(plan, schemas)
    assert any("no matching count flow" in m for m in messages)
    assert any("the factory zips them positionally" in m for m in messages)


def test_rejects_packed_input_mismatch():
    plan, schemas = build("SELECT sum(x1) FROM s [RANGE 10 SLIDE 5]")
    plan.combine.inputs = tuple(
        "packed_bogus" if name == "packed_agg_0" else name
        for name in plan.combine.inputs
    )
    messages = errors_of(plan, schemas)
    assert any("combine must consume them" in m for m in messages)
    assert any("matches no declared flow" in m for m in messages)


def test_rejects_wrong_combine_opcode():
    # A count flow merged with aggr.count would re-count the partials
    # (yielding the number of basic windows, not the number of tuples).
    plan, schemas = build("SELECT count(*) FROM s [RANGE 10 SLIDE 5]")
    for index, instr in enumerate(plan.combine.instructions):
        if instr.opcode == "aggr.sum":
            plan.combine.instructions[index] = dataclasses.replace(
                instr, opcode="aggr.count"
            )
    messages = errors_of(plan, schemas)
    assert any("taxonomy mandates aggr.sum" in m for m in messages)


def test_rejects_forbidden_avg_opcode():
    plan, schemas = build("SELECT sum(x2) FROM s [RANGE 10 SLIDE 5]")
    scan = plan.fragment.inputs[0]
    plan.fragment.instructions = [
        Instr("aggr.avg", (Ref(scan),), plan.fragment.outputs)
    ]
    messages = errors_of(plan, schemas)
    assert any("expanding replication" in m for m in messages)


def test_rejects_double_assignment():
    plan, schemas = build("SELECT sum(x1) FROM s [RANGE 10 SLIDE 5]")
    plan.fragment.instructions.append(plan.fragment.instructions[0])
    messages = errors_of(plan, schemas)
    assert any("single-assignment" in m for m in messages)


def test_rejects_closure_atom_break():
    # Merging an int sum flow with calc.div makes the combined bundle
    # float — it could not re-enter the partial store.
    plan, schemas = build("SELECT sum(x1) FROM s [RANGE 10 SLIDE 5]")
    flow = plan.flows[0].name
    for index, instr in enumerate(plan.combine.instructions):
        if flow in instr.outs:
            plan.combine.instructions[index] = Instr(
                "calc.div",
                (Ref(f"packed_{flow}"), Ref(f"packed_{flow}")),
                (flow,),
                "merge",
            )
    messages = errors_of(plan, schemas)
    assert any("not closed over bundles" in m for m in messages)


def test_rejects_declared_output_atom_mismatch():
    plan, schemas = build("SELECT sum(x1) FROM s [RANGE 10 SLIDE 5]")
    plan.output_atoms = [Atom.STR]
    messages = errors_of(plan, schemas)
    assert any("declared str but" in m for m in messages)


def test_rejects_unknown_flow_kind():
    plan, schemas = build("SELECT sum(x1) FROM s [RANGE 10 SLIDE 5]")
    plan.flows = [Flow(plan.flows[0].name, "median")]
    messages = errors_of(plan, schemas)
    assert any("unknown kind 'median'" in m for m in messages)


def test_rejects_grouped_plan_without_gkey():
    plan, schemas = build(
        "SELECT x1, count(*) FROM s [RANGE 10 SLIDE 5] GROUP BY x1"
    )
    plan.flows = [f for f in plan.flows if f.kind != "gkey"]
    messages = errors_of(plan, schemas)
    assert any("no gkey flow" in m for m in messages)


def test_check_plan_raises_with_rendered_diagnostics():
    plan, schemas = build("SELECT sum(x1) FROM s [RANGE 10 SLIDE 5]")
    instr = plan.combine.instructions[0]
    plan.combine.instructions[0] = dataclasses.replace(instr, tag="main")
    with pytest.raises(PlanVerificationError) as excinfo:
        check_plan(plan, schemas)
    assert "combine[0]" in str(excinfo.value)


def test_engine_debug_hook_verifies_at_submit():
    engine = make_engine()
    engine.verify_plans = True
    query = engine.submit("SELECT x1, sum(x2) FROM s [RANGE 8 SLIDE 4] GROUP BY x1")
    assert query.factory is not None


def test_deepcopy_isolation_of_fixtures():
    # Guard: mutations in negative tests never leak between cases.
    plan, schemas = build("SELECT sum(x1) FROM s [RANGE 10 SLIDE 5]")
    clone = copy.deepcopy(plan)
    clone.flows = []
    assert plan.flows

"""docs/METRICS.md must document every metric the engine exports.

Scrapes the exporter source for Prometheus family names and the
profiler's always-present counters, then asserts each appears verbatim
in docs/METRICS.md — so adding a metric without documenting it fails
the tier-1 suite.
"""

import re
from pathlib import Path

from repro.obs.metrics import BASE_COUNTERS

ROOT = Path(__file__).resolve().parents[1]

METRICS_SRC = ROOT / "src" / "repro" / "obs" / "metrics.py"
METRICS_DOC = ROOT / "docs" / "METRICS.md"


def exported_families() -> set[str]:
    names = set(re.findall(r'"(repro_[a-z_]+)"', METRICS_SRC.read_text()))
    # f-string families (per-counter _total) expand from BASE_COUNTERS.
    names |= {f"repro_{counter}_total" for counter in BASE_COUNTERS}
    return names


def test_every_prometheus_family_is_documented():
    doc = METRICS_DOC.read_text()
    missing = sorted(name for name in exported_families() if name not in doc)
    assert not missing, f"families absent from docs/METRICS.md: {missing}"


def test_every_base_counter_is_documented():
    doc = METRICS_DOC.read_text()
    missing = sorted(
        counter for counter in BASE_COUNTERS if f"`{counter}`" not in doc
    )
    assert not missing, f"counters absent from docs/METRICS.md: {missing}"


def test_snapshot_keys_are_documented():
    from repro import DataCellEngine

    engine = DataCellEngine()
    try:
        engine.create_stream("s", [("x1", "int")])
        engine.submit("SELECT count(*) AS n FROM s [RANGE 2 SLIDE 2]")
        engine.feed("s", columns={"x1": [1, 2]})
        engine.run_until_idle()
        snapshot = engine.metrics()
    finally:
        engine.close()
    doc = METRICS_DOC.read_text()
    missing = sorted(key for key in snapshot if f"`{key}`" not in doc)
    assert not missing, f"snapshot keys absent from docs/METRICS.md: {missing}"

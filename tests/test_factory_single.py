"""Behavioural tests for single-stream incremental factories.

Every test cross-checks the incremental factory against full
re-evaluation and a plain-Python reference on the same data.
"""

import numpy as np
import pytest

from repro import DataCellEngine
from repro.kernel.execution import Profiler

from conftest import assert_rows_equal, ref_q1


@pytest.fixture
def engine():
    e = DataCellEngine()
    e.create_stream("s", [("x1", "int"), ("x2", "int")])
    return e


def feed_random(engine, count, seed=0, domain=10):
    rng = np.random.default_rng(seed)
    x1 = rng.integers(0, domain, count).astype(np.int64)
    x2 = rng.integers(0, 50, count).astype(np.int64)
    engine.feed("s", columns={"x1": x1, "x2": x2})
    return x1, x2


Q1 = "SELECT x1, sum(x2) FROM s [RANGE 100 SLIDE 20] WHERE x1 > 3 GROUP BY x1 ORDER BY x1"


class TestSlidingSemantics:
    def test_no_result_before_first_window(self, engine):
        query = engine.submit(Q1)
        feed_random(engine, 99)
        engine.run_until_idle()
        assert query.results() == []
        assert not query.factory.ready()

    def test_first_window_fires_at_size(self, engine):
        query = engine.submit(Q1)
        feed_random(engine, 100)
        engine.run_until_idle()
        assert len(query.results()) == 1

    def test_window_per_step(self, engine):
        query = engine.submit(Q1)
        feed_random(engine, 100 + 5 * 20)
        engine.run_until_idle()
        assert len(query.results()) == 6
        assert [b.window_index for b in query.results()] == [1, 2, 3, 4, 5, 6]

    def test_partial_step_does_not_fire(self, engine):
        query = engine.submit(Q1)
        feed_random(engine, 119)
        engine.run_until_idle()
        assert len(query.results()) == 1

    def test_results_match_reference(self, engine):
        query = engine.submit(Q1)
        x1, x2 = feed_random(engine, 300, seed=5)
        engine.run_until_idle()
        for k, batch in enumerate(query.results()):
            expected = ref_q1(x1[k * 20 : k * 20 + 100], x2[k * 20 : k * 20 + 100], 3)
            assert_rows_equal(batch.rows(), expected)

    def test_matches_reevaluation(self, engine):
        qi = engine.submit(Q1, mode="incremental")
        qr = engine.submit(Q1, mode="reeval")
        feed_random(engine, 500, seed=9)
        engine.run_until_idle()
        assert qi.result_rows() == qr.result_rows()

    def test_incremental_feeding(self, engine):
        """Tuples arriving in dribs and drabs produce the same windows."""
        query = engine.submit(Q1)
        rng = np.random.default_rng(2)
        x1 = rng.integers(0, 10, 200).astype(np.int64)
        x2 = rng.integers(0, 50, 200).astype(np.int64)
        for i in range(0, 200, 7):
            engine.feed("s", columns={"x1": x1[i : i + 7], "x2": x2[i : i + 7]})
            engine.run_until_idle()
        results = query.results()
        assert len(results) == 6
        for k, batch in enumerate(results):
            expected = ref_q1(x1[k * 20 : k * 20 + 100], x2[k * 20 : k * 20 + 100], 3)
            assert_rows_equal(batch.rows(), expected)

    def test_basket_drained_after_consumption(self, engine):
        query = engine.submit(Q1)
        feed_random(engine, 100)
        engine.run_until_idle()
        assert query.baskets["s"].count == 0  # inputs discarded, partials kept


class TestTumbling:
    def test_tumbling_windows_disjoint(self, engine):
        query = engine.submit("SELECT sum(x2) FROM s [RANGE 50]")
        x1, x2 = feed_random(engine, 150, seed=3)
        engine.run_until_idle()
        rows = [batch.rows() for batch in query.results()]
        assert len(rows) == 3
        for k in range(3):
            assert rows[k] == [(int(x2[k * 50 : (k + 1) * 50].sum()),)]


class TestQueryShapes:
    def test_select_only(self, engine):
        query = engine.submit("SELECT x1 FROM s [RANGE 40 SLIDE 10] WHERE x1 > 6")
        x1, __ = feed_random(engine, 80, seed=7)
        engine.run_until_idle()
        for k, batch in enumerate(query.results()):
            expected = [(int(v),) for v in x1[k * 10 : k * 10 + 40] if v > 6]
            assert batch.rows() == expected

    def test_global_aggregates(self, engine):
        sql = "SELECT min(x1), max(x1), count(*), avg(x2) FROM s [RANGE 60 SLIDE 30]"
        qi = engine.submit(sql)
        qr = engine.submit(sql, mode="reeval")
        feed_random(engine, 240, seed=8)
        engine.run_until_idle()
        for a, b in zip(qi.results(), qr.results()):
            assert_rows_equal(a.rows(), b.rows())

    def test_empty_global_result(self, engine):
        query = engine.submit("SELECT max(x1), sum(x2) FROM s [RANGE 40 SLIDE 20] WHERE x1 > 99")
        feed_random(engine, 120, seed=1)
        engine.run_until_idle()
        assert all(batch.rows() == [] for batch in query.results())
        assert len(query.results()) == 5

    def test_count_only_empty_is_zero(self, engine):
        query = engine.submit("SELECT count(*) FROM s [RANGE 40 SLIDE 20] WHERE x1 > 99")
        feed_random(engine, 40, seed=1)
        engine.run_until_idle()
        assert query.results()[0].rows() == [(0,)]

    def test_having(self, engine):
        sql = (
            "SELECT x1, count(*) FROM s [RANGE 100 SLIDE 50] "
            "GROUP BY x1 HAVING count(*) > 10 ORDER BY x1"
        )
        qi = engine.submit(sql)
        qr = engine.submit(sql, mode="reeval")
        feed_random(engine, 300, seed=4, domain=5)
        engine.run_until_idle()
        assert qi.result_rows() == qr.result_rows()
        assert any(len(rows) for rows in qi.result_rows())

    def test_distinct_order_limit(self, engine):
        sql = "SELECT DISTINCT x1 FROM s [RANGE 60 SLIDE 20] ORDER BY x1 DESC LIMIT 3"
        qi = engine.submit(sql)
        qr = engine.submit(sql, mode="reeval")
        feed_random(engine, 240, seed=6)
        engine.run_until_idle()
        assert qi.result_rows() == qr.result_rows()

    def test_avg_grouped(self, engine):
        sql = "SELECT x1, avg(x2) FROM s [RANGE 80 SLIDE 40] GROUP BY x1 ORDER BY x1"
        qi = engine.submit(sql)
        qr = engine.submit(sql, mode="reeval")
        feed_random(engine, 400, seed=10, domain=4)
        engine.run_until_idle()
        for a, b in zip(qi.results(), qr.results()):
            assert_rows_equal(a.rows(), b.rows())


class TestProfiling:
    def test_breakdown_tags(self, engine):
        query = engine.submit(Q1)
        feed_random(engine, 140)
        factory = query.factory
        batch = factory.step(Profiler())
        assert batch is not None
        assert "main" in batch.breakdown
        assert "merge" in batch.breakdown
        assert batch.response_seconds > 0

"""Tests for receptors (threaded and synchronous ingest)."""

import time

import numpy as np
import pytest

from repro.core.basket import Basket
from repro.core.receptor import Receptor
from repro.errors import StreamError
from repro.kernel.atoms import Atom
from repro.kernel.storage import Schema


@pytest.fixture
def basket():
    return Basket("b", Schema.of(("x1", Atom.INT), ("x2", Atom.INT)))


class TestSynchronousPush:
    def test_push_rows(self, basket):
        receptor = Receptor(basket)
        assert receptor.push_rows([(1, 2), (3, 4)]) == 2
        assert receptor.delivered == 2
        assert basket.count == 2

    def test_push_columns(self, basket):
        receptor = Receptor(basket)
        receptor.push_columns({"x1": np.arange(5), "x2": np.arange(5)})
        assert basket.count == 5


class TestThreadedIngest:
    def test_background_source_drained(self, basket):
        receptor = Receptor(basket, batch_size=16)
        source = iter([(i, i * 2) for i in range(100)])
        receptor.start(source)
        receptor.join(timeout=5.0)
        assert basket.count == 100
        assert receptor.delivered == 100

    def test_on_batch_callback(self, basket):
        receptor = Receptor(basket, batch_size=10)
        batches = []
        receptor.start(iter([(i, i) for i in range(25)]), on_batch=batches.append)
        receptor.join(timeout=5.0)
        assert sum(batches) == 25
        assert len(batches) == 3  # 10 + 10 + 5

    def test_double_start_rejected(self, basket):
        receptor = Receptor(basket)

        def slow():
            for i in range(1000):
                time.sleep(0.001)
                yield (i, i)

        receptor.start(slow())
        try:
            with pytest.raises(StreamError):
                receptor.start(iter([]))
        finally:
            receptor.stop()

    def test_stop_interrupts(self, basket):
        receptor = Receptor(basket, batch_size=1)

        def endless():
            i = 0
            while True:
                time.sleep(0.0005)
                yield (i, i)
                i += 1

        receptor.start(endless())
        time.sleep(0.05)
        receptor.stop()
        count_after_stop = basket.count
        time.sleep(0.05)
        assert basket.count == count_after_stop  # no more arrivals


class TestCsvEmitter:
    def test_rows_written_with_header(self, tmp_path):
        import numpy as np

        from repro import DataCellEngine
        from repro.core.emitter import CsvEmitter

        engine = DataCellEngine()
        engine.create_stream("s", [("x1", "int"), ("x2", "int")])
        query = engine.submit(
            "SELECT x1, count(*) FROM s [RANGE 20 SLIDE 10] GROUP BY x1 ORDER BY x1"
        )
        path = tmp_path / "out.csv"
        with CsvEmitter(path) as emitter:
            engine.scheduler.add_sink(query.name, emitter)
            rng = np.random.default_rng(1)
            engine.feed("s", columns={"x1": rng.integers(0, 3, 40),
                                      "x2": rng.integers(0, 9, 40)})
            engine.run_until_idle()
            assert emitter.rows_written > 0
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "window,x1,col1"
        # every data line starts with a window index and has 3 fields
        assert all(len(line.split(",")) == 3 for line in lines[1:])
        windows = {line.split(",")[0] for line in lines[1:]}
        assert windows == {"1", "2", "3"}

    def test_no_header_mode(self, tmp_path):
        from repro.core.emitter import CsvEmitter
        from repro.core.factory import ResultBatch
        from repro.kernel.atoms import Atom
        from repro.kernel.bat import BAT

        path = tmp_path / "raw.csv"
        with CsvEmitter(path, write_header=False) as emitter:
            batch = ResultBatch(
                ["a"], {"a": BAT.from_values([7], Atom.INT)}, 1, 0.0
            )
            emitter("f", batch)
        assert path.read_text() == "1,7\n"

"""Shared fixtures and plain-Python reference implementations.

The reference functions are deliberately naive (dict/loop based): every
engine path (kernel programs, incremental factories, re-evaluation,
SystemX) is checked against them in the equivalence tests.
"""

from __future__ import annotations

import collections
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Hypothesis profiles: `ci` is derandomized (reproducible runs, bounded
# example counts, a hard deadline) for the pipeline; `dev` explores more
# examples with fresh entropy locally.  Select with HYPOTHESIS_PROFILE.
settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=30,
    deadline=2000,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", max_examples=100, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT
from repro.kernel.storage import Catalog, Schema


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def catalog() -> Catalog:
    """A catalog with the paper's streams s / s2 and a small table."""
    cat = Catalog()
    cat.create_stream("s", Schema.of(("x1", Atom.INT), ("x2", Atom.INT)))
    cat.create_stream("s2", Schema.of(("x1", Atom.INT), ("x2", Atom.INT)))
    cat.create_stream(
        "t", Schema.of(("k", Atom.INT), ("v", Atom.FLT), ("tag", Atom.STR))
    )
    table = cat.create_table(
        "ref", Schema.of(("x2", Atom.INT), ("label", Atom.STR))
    )
    table.append_rows([(i, f"label{i % 5}") for i in range(50)])
    return cat


def int_bat(values, hseq: int = 0) -> BAT:
    return BAT.from_values(values, Atom.INT, hseq)


def flt_bat(values, hseq: int = 0) -> BAT:
    return BAT.from_values(values, Atom.FLT, hseq)


def str_bat(values, hseq: int = 0) -> BAT:
    return BAT.from_values(values, Atom.STR, hseq)


# ----------------------------------------------------------------------
# reference implementations
# ----------------------------------------------------------------------
def ref_q1(x1, x2, threshold):
    """SELECT x1, sum(x2) WHERE x1 > threshold GROUP BY x1 ORDER BY x1."""
    sums: dict = collections.defaultdict(int)
    for a, b in zip(x1, x2):
        if a > threshold:
            sums[int(a)] += int(b)
    return sorted(sums.items())


def ref_q2(a1, a2, b1, b2, threshold):
    """SELECT max(s1.x1), avg(s2.x1) WHERE s1.x2 = s2.x2 AND s1.x1 > t."""
    matches_left = []
    matches_right = []
    right = collections.defaultdict(list)
    for w, z in zip(b1, b2):
        right[int(z)].append(int(w))
    for u, v in zip(a1, a2):
        if u > threshold:
            for w in right.get(int(v), ()):
                matches_left.append(int(u))
                matches_right.append(w)
    if not matches_left:
        return []
    return [(max(matches_left), sum(matches_right) / len(matches_right))]


def ref_q3(x1, x2, threshold):
    """SELECT max(x1), sum(x2) WHERE x1 > threshold (landmark body)."""
    sel = [(int(a), int(b)) for a, b in zip(x1, x2) if a > threshold]
    if not sel:
        return []
    return [(max(a for a, __ in sel), sum(b for __, b in sel))]


def assert_rows_equal(got, expected, float_tol: float = 1e-9):
    """Compare row lists with float tolerance."""
    assert len(got) == len(expected), (got, expected)
    for g, e in zip(got, expected):
        assert len(g) == len(e), (g, e)
        for gv, ev in zip(g, e):
            if isinstance(ev, float) or isinstance(gv, float):
                assert gv == pytest.approx(ev, abs=float_tol), (got, expected)
            else:
                assert gv == ev, (got, expected)

"""Unit tests for the atom (scalar type) system."""

import numpy as np
import pytest

from repro.errors import TypeMismatchError
from repro.kernel.atoms import (
    Atom,
    atom_of_dtype,
    atom_of_python,
    division_result,
    is_numeric,
    null_value,
    numpy_dtype,
    promote,
)


class TestNumpyDtype:
    def test_int_maps_to_int64(self):
        assert numpy_dtype(Atom.INT) == np.dtype(np.int64)

    def test_flt_maps_to_float64(self):
        assert numpy_dtype(Atom.FLT) == np.dtype(np.float64)

    def test_bit_maps_to_bool(self):
        assert numpy_dtype(Atom.BIT) == np.dtype(np.bool_)

    def test_str_maps_to_object(self):
        assert numpy_dtype(Atom.STR) == np.dtype(object)

    def test_timestamp_maps_to_int64(self):
        assert numpy_dtype(Atom.TIMESTAMP) == np.dtype(np.int64)


class TestAtomOfDtype:
    def test_integer_kinds(self):
        assert atom_of_dtype(np.dtype(np.int32)) == Atom.INT
        assert atom_of_dtype(np.dtype(np.uint8)) == Atom.INT

    def test_float(self):
        assert atom_of_dtype(np.dtype(np.float32)) == Atom.FLT

    def test_bool(self):
        assert atom_of_dtype(np.dtype(np.bool_)) == Atom.BIT

    def test_object_is_str(self):
        assert atom_of_dtype(np.dtype(object)) == Atom.STR

    def test_unsupported_raises(self):
        with pytest.raises(TypeMismatchError):
            atom_of_dtype(np.dtype("datetime64[ns]"))


class TestAtomOfPython:
    def test_bool_before_int(self):
        # bool is a subclass of int; BIT must win.
        assert atom_of_python(True) == Atom.BIT

    def test_int(self):
        assert atom_of_python(7) == Atom.INT

    def test_float(self):
        assert atom_of_python(1.5) == Atom.FLT

    def test_str(self):
        assert atom_of_python("x") == Atom.STR

    def test_numpy_scalars(self):
        assert atom_of_python(np.int64(3)) == Atom.INT
        assert atom_of_python(np.float64(3.0)) == Atom.FLT

    def test_none_raises(self):
        with pytest.raises(TypeMismatchError):
            atom_of_python(None)


class TestPromotion:
    def test_same_atom(self):
        assert promote(Atom.INT, Atom.INT) == Atom.INT

    def test_int_flt_widens(self):
        assert promote(Atom.INT, Atom.FLT) == Atom.FLT
        assert promote(Atom.FLT, Atom.INT) == Atom.FLT

    def test_timestamp_arith_degrades_to_int(self):
        assert promote(Atom.TIMESTAMP, Atom.INT) == Atom.INT

    def test_str_not_promotable(self):
        with pytest.raises(TypeMismatchError):
            promote(Atom.STR, Atom.INT)

    def test_division_always_flt(self):
        assert division_result(Atom.INT, Atom.INT) == Atom.FLT
        assert division_result(Atom.FLT, Atom.INT) == Atom.FLT

    def test_division_rejects_str(self):
        with pytest.raises(TypeMismatchError):
            division_result(Atom.STR, Atom.INT)


class TestNumericAndNulls:
    def test_is_numeric(self):
        assert is_numeric(Atom.INT)
        assert is_numeric(Atom.FLT)
        assert is_numeric(Atom.OID)
        assert is_numeric(Atom.TIMESTAMP)
        assert not is_numeric(Atom.STR)
        assert not is_numeric(Atom.BIT)

    def test_null_values(self):
        assert null_value(Atom.STR) is None
        assert np.isnan(null_value(Atom.FLT))
        assert null_value(Atom.INT) == np.iinfo(np.int64).min

"""Tests for cross-query fragment sharing.

Covers the three layers: canonical fragment fingerprints
(:mod:`repro.core.rewriter.canonical`), the engine-wide
:class:`~repro.core.partials.FragmentCache`, and the end-to-end sharing
semantics wired up by :class:`~repro.core.engine.DataCellEngine`.
"""

import threading

import numpy as np
import pytest

from repro import DataCellEngine
from repro.core.partials import FragmentCache
from repro.core.rewriter.canonical import canonical_text, fragment_fingerprint
from repro.errors import SchedulerError
from repro.kernel.execution.profiler import Profiler
from repro.kernel.execution.program import Lit, Program, Ref


def _program(prefix: str, alias: str, threshold: object) -> tuple[Program, dict]:
    """A small select+sum fragment with namespaced slots."""
    program = Program(inputs=(f"{alias}__x1", f"{alias}__x2"))
    program.emit(
        "algebra.thetaselect",
        [Ref(f"{alias}__x1"), Lit(">"), Lit(threshold)],
        [f"{prefix}0_sel"],
    )
    program.emit(
        "algebra.projection",
        [Ref(f"{prefix}0_sel"), Ref(f"{alias}__x2")],
        [f"{prefix}1_vals"],
    )
    program.emit("aggr.sum", [Ref(f"{prefix}1_vals")], [f"{prefix}2_sum"])
    program.outputs = (f"{prefix}2_sum",)
    names = {f"{alias}__x1": "x1", f"{alias}__x2": "x2"}
    return program, names


class TestFingerprint:
    def test_alpha_renamed_programs_hash_equal(self):
        a, names_a = _program("f", "s", 10)
        b, names_b = _program("zz", "other_alias", 10)
        assert fragment_fingerprint(a, names_a) == fragment_fingerprint(b, names_b)

    def test_different_constants_hash_apart(self):
        a, names_a = _program("f", "s", 10)
        b, names_b = _program("f", "s", 11)
        assert fragment_fingerprint(a, names_a) != fragment_fingerprint(b, names_b)

    def test_constant_type_matters(self):
        a, names_a = _program("f", "s", 10)
        b, names_b = _program("f", "s", 10.0)
        assert fragment_fingerprint(a, names_a) != fragment_fingerprint(b, names_b)

    def test_column_binding_matters(self):
        a, names_a = _program("f", "s", 10)
        b, _ = _program("f", "s", 10)
        # Same program text, but the slots bind swapped stream columns.
        swapped = {"s__x1": "x2", "s__x2": "x1"}
        assert fragment_fingerprint(a, names_a) != fragment_fingerprint(b, swapped)

    def test_opcode_matters(self):
        a, names = _program("f", "s", 10)
        b = Program(inputs=a.inputs, outputs=a.outputs)
        for instr in a.instructions:
            opcode = "aggr.min" if instr.opcode == "aggr.sum" else instr.opcode
            b.emit(opcode, instr.args, instr.outs)
        assert fragment_fingerprint(a, names) != fragment_fingerprint(b, names)

    def test_canonical_text_strips_aliases(self):
        a, names = _program("f", "sensors", 10)
        text = canonical_text(a, names)
        assert "sensors" not in text
        assert "in:x1" in text and "in:x2" in text

    def test_undefined_slot_rejected(self):
        program = Program(inputs=("s__x1",), outputs=("out",))
        program.emit("bat.id", [Ref("nowhere")], ["out"])
        with pytest.raises(ValueError):
            fragment_fingerprint(program, {"s__x1": "x1"})


class TestFragmentCache:
    def test_compute_once_then_hit(self):
        cache = FragmentCache()
        cache.register("k", capacity=4)
        calls = []
        make = lambda: calls.append(1) or {"flow": "bundle"}
        first = cache.get_or_compute("k", (0, 10), make)
        second = cache.get_or_compute("k", (0, 10), make)
        assert first is second
        assert len(calls) == 1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_distinct_spans_do_not_collide(self):
        cache = FragmentCache()
        cache.register("k", capacity=4)
        a = cache.get_or_compute("k", (0, 10), lambda: {"v": "a"})
        b = cache.get_or_compute("k", (10, 10), lambda: {"v": "b"})
        assert a["v"] == "a" and b["v"] == "b"

    def test_seq_expiry_mirrors_partial_store(self):
        cache = FragmentCache()
        cache.register("k", capacity=2)
        for start in range(4):
            cache.get_or_compute("k", (start, 1), lambda s=start: {"v": s})
        assert cache.stats()["entries"] == 2
        # The evicted span recomputes (a miss), the live ones hit.
        recomputed = []
        cache.get_or_compute("k", (0, 1), lambda: recomputed.append(1) or {"v": 0})
        assert recomputed
        cache.get_or_compute("k", (3, 1), lambda: recomputed.append(2) or {})
        assert len(recomputed) == 1

    def test_register_widens_capacity(self):
        cache = FragmentCache()
        cache.register("k", capacity=1)
        cache.register("k", capacity=3)
        for start in range(3):
            cache.get_or_compute("k", (start, 1), lambda s=start: {"v": s})
        assert cache.stats()["entries"] == 3

    def test_unregistered_key_rejected(self):
        cache = FragmentCache()
        with pytest.raises(SchedulerError):
            cache.get_or_compute("nope", (0, 1), dict)

    def test_profiler_counters(self):
        cache = FragmentCache()
        cache.register("k", capacity=2)
        profiler = Profiler()
        cache.get_or_compute("k", (0, 1), dict, profiler)
        cache.get_or_compute("k", (0, 1), dict, profiler)
        assert profiler.counter("fragment_cache_misses") == 1
        assert profiler.counter("fragment_cache_hits") == 1
        assert profiler.snapshot()["counters"]["fragment_cache_hits"] == 1

    @pytest.mark.concurrency
    def test_concurrent_lookups_compute_once(self):
        cache = FragmentCache()
        cache.register("k", capacity=4)
        calls = []
        gate = threading.Barrier(8)

        def compute():
            calls.append(1)
            return {"v": "shared"}

        results = []

        def lookup():
            gate.wait()
            results.append(cache.get_or_compute("k", (0, 100), compute))

        threads = [threading.Thread(target=lookup) for __ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1
        assert all(r is results[0] for r in results)
        assert cache.stats()["hits"] == 7


def _feed(engine, count, seed=0, stream="s"):
    rng = np.random.default_rng(seed)
    engine.feed(
        stream,
        columns={
            "x1": rng.integers(0, 10, count),
            "x2": rng.integers(0, 50, count),
        },
    )


def _engine(**kwargs):
    engine = DataCellEngine(**kwargs)
    engine.create_stream("s", [("x1", "int"), ("x2", "int")])
    return engine


SQL = "SELECT x1, sum(x2) FROM s [RANGE 40 SLIDE 20] WHERE x1 > 3 GROUP BY x1"


class TestEngineSharing:
    def test_identical_queries_share(self):
        engine = _engine()
        queries = [engine.submit(SQL) for __ in range(4)]
        _feed(engine, 200)
        engine.run_until_idle()
        stats = engine.fragment_cache.stats()
        assert stats["misses"] == 10  # one per basic window
        assert stats["hits"] == 30  # three sharers per basic window
        rows = [q.result_rows() for q in queries]
        assert all(r == rows[0] for r in rows)

    def test_sharing_matches_unshared_results(self):
        shared = _engine(fragment_sharing=True)
        unshared = _engine(fragment_sharing=False)
        for engine in (shared, unshared):
            for __ in range(3):
                engine.submit(SQL)
            _feed(engine, 300, seed=3)
            engine.run_until_idle()
        assert unshared.fragment_cache.stats()["misses"] == 0
        for name in ("q1", "q2", "q3"):
            assert shared.query(name).result_rows() == unshared.query(name).result_rows()

    def test_different_constants_do_not_share(self):
        engine = _engine()
        engine.submit(SQL)
        engine.submit(SQL.replace("x1 > 3", "x1 > 4"))
        _feed(engine, 100)
        engine.run_until_idle()
        assert engine.fragment_cache.stats()["hits"] == 0

    def test_different_window_same_step_shares(self):
        engine = _engine()
        small = engine.submit("SELECT sum(x2) FROM s [RANGE 40 SLIDE 20]")
        large = engine.submit("SELECT sum(x2) FROM s [RANGE 80 SLIDE 20]")
        _feed(engine, 160, seed=9)
        engine.run_until_idle()
        assert engine.fragment_cache.stats()["hits"] > 0
        # Cross-check against unshared execution.
        plain = _engine(fragment_sharing=False)
        q1 = plain.submit("SELECT sum(x2) FROM s [RANGE 40 SLIDE 20]")
        q2 = plain.submit("SELECT sum(x2) FROM s [RANGE 80 SLIDE 20]")
        _feed(plain, 160, seed=9)
        plain.run_until_idle()
        assert small.result_rows() == q1.result_rows()
        assert large.result_rows() == q2.result_rows()

    def test_late_submission_spans_stay_aligned(self):
        """A query submitted mid-stream shares only truly identical slices."""
        engine = _engine()
        first = engine.submit(SQL)
        _feed(engine, 50, seed=1)  # 2 basic windows consumed + 10 leftover
        engine.run_until_idle()
        second = engine.submit(SQL)
        _feed(engine, 150, seed=2)
        engine.run_until_idle()
        # Verify against an unshared engine fed identically.
        plain = _engine(fragment_sharing=False)
        p1 = plain.submit(SQL)
        _feed(plain, 50, seed=1)
        plain.run_until_idle()
        p2 = plain.submit(SQL)
        _feed(plain, 150, seed=2)
        plain.run_until_idle()
        assert first.result_rows() == p1.result_rows()
        assert second.result_rows() == p2.result_rows()

    def test_misaligned_late_submission_never_hits(self):
        """Offset by a non-multiple of the step: spans must not collide."""
        engine = _engine()
        engine.submit(SQL)
        _feed(engine, 30, seed=4)  # not a multiple of the 20-tuple step
        engine.run_until_idle()
        engine.submit(SQL)
        _feed(engine, 170, seed=5)
        engine.run_until_idle()
        assert engine.fragment_cache.stats()["hits"] == 0

    def test_receptor_disables_sharing(self):
        engine = _engine()
        query = engine.submit(SQL)
        assert query.factory.shares_fragments
        engine.receptor(query, "s")
        assert not query.factory.shares_fragments

    def test_landmark_queries_share(self):
        engine = _engine()
        queries = [
            engine.submit("SELECT max(x1), sum(x2) FROM s [LANDMARK SLIDE 25]")
            for __ in range(2)
        ]
        _feed(engine, 100, seed=6)
        engine.run_until_idle()
        assert engine.fragment_cache.stats()["hits"] == 4
        assert queries[0].result_rows() == queries[1].result_rows()

    def test_join_queries_do_not_register(self):
        engine = _engine()
        engine.create_stream("s2", [("x1", "int"), ("x2", "int")])
        engine.submit(
            "SELECT max(a.x1) FROM s a [RANGE 40 SLIDE 20], "
            "s2 b [RANGE 40 SLIDE 20] WHERE a.x2 = b.x2"
        )
        assert engine.fragment_cache.stats()["groups"] == 0

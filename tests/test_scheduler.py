"""Tests for the Petri-net scheduler and emitters."""

import time

import numpy as np
import pytest

from repro import DataCellEngine
from repro.core.emitter import CallbackEmitter, CollectingEmitter
from repro.core.scheduler import Scheduler
from repro.errors import SchedulerError


@pytest.fixture
def engine():
    e = DataCellEngine()
    e.create_stream("s", [("x1", "int"), ("x2", "int")])
    return e


def feed(engine, count, seed=0):
    rng = np.random.default_rng(seed)
    engine.feed(
        "s",
        columns={
            "x1": rng.integers(0, 10, count),
            "x2": rng.integers(0, 50, count),
        },
    )


SQL = "SELECT count(*) FROM s [RANGE 40 SLIDE 20]"


class TestSynchronousScheduling:
    def test_run_once_fires_ready_factories(self, engine):
        q1 = engine.submit(SQL)
        q2 = engine.submit(SQL)
        feed(engine, 40)
        fired = engine.scheduler.run_once()
        assert fired == 2
        assert len(q1.results()) == len(q2.results()) == 1

    def test_run_until_idle_drains_backlog(self, engine):
        query = engine.submit(SQL)
        feed(engine, 40 + 20 * 9)
        fired = engine.scheduler.run_until_idle()
        assert fired == 10
        assert len(query.results()) == 10

    def test_idle_when_nothing_ready(self, engine):
        engine.submit(SQL)
        assert engine.scheduler.run_until_idle() == 0

    def test_duplicate_registration_rejected(self, engine):
        query = engine.submit(SQL)
        with pytest.raises(SchedulerError):
            engine.scheduler.register(query.factory)

    def test_unregister_stops_firing(self, engine):
        query = engine.submit(SQL)
        engine.scheduler.unregister(query.name)
        feed(engine, 100)
        assert engine.scheduler.run_until_idle() == 0

    def test_multiple_queries_independent_windows(self, engine):
        fast = engine.submit("SELECT count(*) FROM s [RANGE 20 SLIDE 10]")
        slow = engine.submit("SELECT count(*) FROM s [RANGE 80 SLIDE 40]")
        feed(engine, 80)
        engine.run_until_idle()
        assert len(fast.results()) == 7
        assert len(slow.results()) == 1


class TestEmitters:
    def test_collecting_emitter_counts(self, engine):
        query = engine.submit(SQL)
        feed(engine, 80)
        engine.run_until_idle()
        assert query.emitter.total_batches == 3
        assert query.last() is not None

    def test_keep_last_bound(self):
        emitter = CollectingEmitter(keep_last=2)
        from repro.core.factory import ResultBatch

        for i in range(5):
            emitter("f", ResultBatch([], {}, i, 0.0))
        assert emitter.total_batches == 5
        assert len(emitter.batches()) == 2

    def test_callback_emitter(self, engine):
        seen = []
        query = engine.submit(SQL)
        engine.scheduler.add_sink(query.name, CallbackEmitter(seen.append))
        feed(engine, 60)
        engine.run_until_idle()
        assert len(seen) == 2

    def test_clear(self):
        emitter = CollectingEmitter()
        from repro.core.factory import ResultBatch

        emitter("f", ResultBatch([], {}, 0, 0.0))
        emitter.clear()
        assert emitter.batches() == []
        assert emitter.last() is None


class TestBackgroundScheduling:
    def test_background_loop_processes_arrivals(self, engine):
        query = engine.submit(SQL)
        engine.start()
        try:
            feed(engine, 120)
            deadline = time.time() + 5.0
            while time.time() < deadline and len(query.results()) < 5:
                time.sleep(0.01)
        finally:
            engine.stop()
        assert len(query.results()) == 5

    def test_double_start_rejected(self, engine):
        engine.start()
        try:
            with pytest.raises(SchedulerError):
                engine.start()
        finally:
            engine.stop()

    def test_stop_drains(self, engine):
        query = engine.submit(SQL)
        engine.start()
        feed(engine, 40)
        engine.stop(drain=True)
        assert len(query.results()) == 1

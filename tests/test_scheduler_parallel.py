"""Tests for the parallel firing scheduler.

Covers: element-wise equivalence of ``workers=1`` / ``workers=N`` with the
pre-scheduler direct-driving path (the Figure-4/6/7 query shapes), the
per-factory firing lock (no double-stepping from concurrent drivers),
worker-exception capture, profiler thread-safety, and a randomized
multi-stream concurrency stress test.
"""

import threading
import time

import numpy as np
import pytest

from repro import DataCellEngine
from repro.core.factory import FactoryBase
from repro.core.scheduler import Scheduler
from repro.errors import SchedulerError
from repro.kernel.execution.profiler import Profiler

# The benchmark query shapes of Figures 4, 6 and 7 (scaled down): grouped
# aggregation over a selection, global aggregates, and a landmark query.
FIG_QUERIES = [
    "SELECT x1, sum(x2) FROM s [RANGE 80 SLIDE 20] WHERE x1 > 3 GROUP BY x1",
    "SELECT min(x1), max(x2), count(*) FROM s [RANGE 40 SLIDE 10]",
    "SELECT max(x1), sum(x2) FROM s [LANDMARK SLIDE 25]",
    "SELECT avg(x2) FROM s [RANGE 60 SLIDE 20] WHERE x2 > 10",
]


def _columns(count, seed):
    rng = np.random.default_rng(seed)
    return {
        "x1": rng.integers(0, 10, count),
        "x2": rng.integers(0, 50, count),
    }


def _engine(**kwargs):
    engine = DataCellEngine(**kwargs)
    engine.create_stream("s", [("x1", "int"), ("x2", "int")])
    return engine


def _run_workload(engine, queries, seed=11, chunks=8, chunk_size=50):
    handles = [engine.submit(sql) for sql in queries]
    for chunk in range(chunks):
        engine.feed("s", columns=_columns(chunk_size, seed + chunk))
        engine.run_until_idle()
    return [handle.result_rows() for handle in handles]


class TestWorkersEquivalence:
    def test_workers1_matches_direct_factory_driving(self):
        """The scheduler path equals the pre-scheduler harness path."""
        via_scheduler = _run_workload(_engine(), FIG_QUERIES)
        # Direct driving: the benchmark-harness idiom that bypasses the
        # scheduler entirely (the pre-parallelism reference semantics).
        engine = _engine(fragment_sharing=False)
        handles = [engine.submit(sql) for sql in FIG_QUERIES]
        for chunk in range(8):
            engine.feed("s", columns=_columns(50, 11 + chunk))
            for handle in handles:
                while True:
                    batch = handle.factory.step(Profiler())
                    if batch is None:
                        break
                    handle.emitter(handle.name, batch)
        direct = [handle.result_rows() for handle in handles]
        assert via_scheduler == direct

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_matches_sequential(self, workers):
        sequential = _run_workload(_engine(workers=1), FIG_QUERIES)
        parallel = _run_workload(_engine(workers=workers), FIG_QUERIES)
        assert parallel == sequential

    def test_parallel_without_sharing_matches(self):
        sequential = _run_workload(_engine(workers=1, fragment_sharing=False), FIG_QUERIES)
        parallel = _run_workload(_engine(workers=4, fragment_sharing=False), FIG_QUERIES)
        assert parallel == sequential

    def test_workers_validated(self):
        with pytest.raises(SchedulerError):
            Scheduler(workers=0)


class _TracingFactory(FactoryBase):
    """Counts concurrent step() entries; fails the test on overlap."""

    def __init__(self, name="tracer", results=1):
        self.name = name
        self._remaining = results
        self._inside = 0
        self._lock = threading.Lock()
        self.max_inside = 0
        self.steps = 0

    def ready(self):
        return self._remaining > 0

    def step(self, profiler=None):
        with self._lock:
            self._inside += 1
            self.max_inside = max(self.max_inside, self._inside)
        time.sleep(0.002)  # widen the race window
        with self._lock:
            self._inside -= 1
            if self._remaining <= 0:
                return None
            self._remaining -= 1
            self.steps += 1
        from repro.core.factory import ResultBatch

        return ResultBatch([], {}, 0, 0.0)


class _ExplodingFactory(FactoryBase):
    name = "boom"

    def __init__(self, name="boom", message="kernel exploded"):
        self.name = name
        self.message = message

    def ready(self):
        return True

    def step(self, profiler=None):
        raise RuntimeError(self.message)


class TestFiringLock:
    @pytest.mark.concurrency
    def test_concurrent_run_once_never_double_steps(self):
        """The start()/run_once() race: a factory must not step twice
        concurrently even with many threads scanning at once."""
        scheduler = Scheduler()
        tracer = _TracingFactory(results=200)
        scheduler.register(tracer)
        scheduler.start(poll_interval=0.0001)
        try:
            threads = [
                threading.Thread(target=scheduler.run_once) for __ in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            deadline = time.time() + 5.0
            while time.time() < deadline and tracer.ready():
                time.sleep(0.005)
        finally:
            scheduler.stop(drain=True)
        assert tracer.max_inside == 1
        assert tracer.steps == 200

    @pytest.mark.concurrency
    def test_parallel_scan_fires_each_factory_once(self):
        scheduler = Scheduler(workers=4)
        tracers = [_TracingFactory(f"t{i}", results=3) for i in range(6)]
        for tracer in tracers:
            scheduler.register(tracer)
        total = scheduler.run_until_idle()
        scheduler.close()
        assert total == 18
        assert all(t.max_inside == 1 for t in tracers)


class TestWorkerExceptions:
    def test_stop_reraises_background_error(self):
        scheduler = Scheduler()
        scheduler.register(_ExplodingFactory())
        scheduler.start(poll_interval=0.0001)
        deadline = time.time() + 5.0
        while time.time() < deadline and scheduler._thread.is_alive():
            time.sleep(0.005)
        with pytest.raises(RuntimeError, match="kernel exploded"):
            scheduler.stop(drain=True)
        # The error is surfaced once, not resurfaced forever.
        scheduler.stop()

    def test_run_until_idle_reraises_background_error(self):
        scheduler = Scheduler()
        scheduler.register(_ExplodingFactory())
        scheduler.start(poll_interval=0.0001)
        deadline = time.time() + 5.0
        while time.time() < deadline and scheduler._thread.is_alive():
            time.sleep(0.005)
        scheduler._stop_event.set()
        scheduler._thread.join()
        scheduler._thread = None
        with pytest.raises(RuntimeError, match="kernel exploded"):
            scheduler.run_until_idle()

    def test_parallel_run_once_propagates(self):
        scheduler = Scheduler(workers=2)
        scheduler.register(_ExplodingFactory())
        scheduler.register(_TracingFactory("ok", results=1))
        with pytest.raises(RuntimeError, match="kernel exploded"):
            scheduler.run_once()
        scheduler.close()

    def test_concurrent_failures_all_surface_in_chain(self):
        """Regression: a parallel scan used to raise only ``errors[0]``,
        silently dropping every other factory's failure.  Both exceptions
        must now arrive, linked through ``__context__``."""
        scheduler = Scheduler(workers=2)
        scheduler.register(_ExplodingFactory("boom-a", "failure alpha"))
        scheduler.register(_ExplodingFactory("boom-b", "failure beta"))
        with pytest.raises(RuntimeError) as excinfo:
            scheduler.run_once()
        scheduler.close()
        messages = set()
        error = excinfo.value
        while error is not None:
            messages.add(str(error))
            error = error.__context__
        assert messages == {"failure alpha", "failure beta"}
        assert scheduler.profiler.counter("worker_errors") == 2

    def test_sequential_failure_counts_worker_error(self):
        scheduler = Scheduler(workers=1)
        scheduler.register(_ExplodingFactory())
        with pytest.raises(RuntimeError, match="kernel exploded"):
            scheduler.run_once()
        assert scheduler.profiler.counter("worker_errors") == 1


class TestProfilerSnapshot:
    """Regression: snapshot() used to flatten tags ∪ counters into one
    dict, type-punning int counters into the float timing view (and
    letting a counter silently shadow a tag of the same name)."""

    def test_structured_snapshot_separates_kinds(self):
        profiler = Profiler()
        profiler.record("main", "algebra.select", 0.25)
        profiler.count("firings", 3)
        snap = profiler.snapshot()
        assert snap["tags"] == {"main": 0.25}
        assert snap["counters"] == {"firings": 3}
        assert snap["opcodes"] == {"algebra.select": 0.25}
        assert snap["calls"] == {"algebra.select": 1}

    def test_name_collision_keeps_both_values(self):
        profiler = Profiler()
        profiler.record("main", "op", 0.5)       # tag "main": 0.5 s
        profiler.count("main", 7)                # counter "main": 7
        snap = profiler.snapshot()
        assert snap["tags"]["main"] == 0.5
        assert snap["counters"]["main"] == 7
        # the deprecated flat view documents its lossy collision rule
        assert profiler.snapshot_flat()["main"] == 7

    def test_flat_view_matches_old_shape(self):
        profiler = Profiler()
        profiler.record("merge", "op", 0.125)
        profiler.count("firings")
        assert profiler.snapshot_flat() == {"merge": 0.125, "firings": 1}


class TestSchedulerStats:
    def test_factory_stats_counters(self):
        engine = _engine()
        engine.submit("SELECT count(*) FROM s [RANGE 40 SLIDE 20]")
        engine.submit("SELECT count(*) FROM s [RANGE 40 SLIDE 20]")
        engine.feed("s", columns=_columns(100, 3))
        engine.run_until_idle()
        stats = engine.scheduler.factory_stats()
        assert stats["q1"]["counters"]["firings"] == 4
        assert stats["q2"]["counters"]["firings"] == 4
        # q2 reuses every basic window q1 computed.
        assert stats["q2"]["counters"].get("fragment_cache_hits", 0) == 5
        assert engine.scheduler.profiler.counter("firings") == 8


class TestProfilerThreadSafety:
    @pytest.mark.concurrency
    def test_concurrent_record_and_merge(self):
        shared = Profiler()
        gate = threading.Barrier(8)

        def hammer(i):
            gate.wait()
            local = Profiler()
            for __ in range(500):
                local.record("main", f"op{i}", 0.001)
                local.count("firings")
            shared.merge_from(local)
            for __ in range(500):
                shared.record("merge", f"op{i}", 0.001)
                shared.count("firings")

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert shared.counter("firings") == 8 * 1000
        assert shared.calls["op3"] == 1000
        assert abs(shared.tag_seconds("main") - 8 * 0.5) < 1e-9
        assert abs(shared.tag_seconds("merge") - 8 * 0.5) < 1e-9


@pytest.mark.concurrency
class TestConcurrencyStress:
    def test_multistream_fleet_matches_sequential(self):
        """Multiple streams × multiple queries × random interleaved appends:
        workers=4 results must equal workers=1 element-wise."""

        def build(workers):
            engine = DataCellEngine(workers=workers)
            engine.create_stream("a", [("x1", "int"), ("x2", "int")])
            engine.create_stream("b", [("x1", "int"), ("x2", "int")])
            handles = []
            for stream in ("a", "b"):
                handles.append(engine.submit(
                    f"SELECT x1, sum(x2) FROM {stream} [RANGE 60 SLIDE 20] "
                    "WHERE x1 > 2 GROUP BY x1"
                ))
                handles.append(engine.submit(
                    f"SELECT count(*), max(x2) FROM {stream} [RANGE 40 SLIDE 10]"
                ))
                handles.append(engine.submit(
                    f"SELECT x1, sum(x2) FROM {stream} [RANGE 60 SLIDE 20] "
                    "WHERE x1 > 2 GROUP BY x1"
                ))
            return engine, handles

        def drive(engine):
            rng = np.random.default_rng(42)  # same append schedule both runs
            for __ in range(60):
                stream = "a" if rng.integers(0, 2) else "b"
                count = int(rng.integers(1, 40))
                engine.feed(stream, columns={
                    "x1": rng.integers(0, 10, count),
                    "x2": rng.integers(0, 50, count),
                })
                if rng.integers(0, 3) == 0:
                    engine.run_until_idle()
            engine.run_until_idle()

        sequential_engine, sequential = build(1)
        drive(sequential_engine)
        parallel_engine, parallel = build(4)
        drive(parallel_engine)
        try:
            for seq_handle, par_handle in zip(sequential, parallel):
                assert seq_handle.result_rows() == par_handle.result_rows()
            assert parallel_engine.fragment_cache.stats()["hits"] > 0
        finally:
            parallel_engine.close()
            sequential_engine.close()

    def test_background_parallel_with_feeder_threads(self):
        """Background loop + parallel firing + concurrent feeders."""
        engine = _engine(workers=4)
        queries = [engine.submit(
            "SELECT x1, sum(x2) FROM s [RANGE 40 SLIDE 20] WHERE x1 > 3 GROUP BY x1"
        ) for __ in range(4)]
        engine.start()
        try:
            for chunk in range(10):
                engine.feed("s", columns=_columns(40, 100 + chunk))
                time.sleep(0.002)
            deadline = time.time() + 5.0
            while time.time() < deadline and any(
                len(q.results()) < 19 for q in queries
            ):
                time.sleep(0.01)
        finally:
            engine.stop(drain=True)
            engine.close()
        rows = [q.result_rows() for q in queries]
        assert all(len(r) == 19 for r in rows)
        assert all(r == rows[0] for r in rows)

"""Unit tests for window specifications."""

import pytest

from repro.errors import UnsupportedQueryError
from repro.core.windows import WindowSpec
from repro.sql.ast import WindowClause


class TestWindowSpec:
    def test_sliding(self):
        w = WindowSpec("sliding", 100, 10)
        assert w.basic_windows == 10
        assert not w.is_landmark

    def test_tumbling_has_one_basic_window(self):
        w = WindowSpec.tumbling(50)
        assert w.basic_windows == 1

    def test_sliding_helper_collapses_to_tumbling(self):
        w = WindowSpec.sliding(100, 100)
        assert w.kind == "tumbling"

    def test_landmark(self):
        w = WindowSpec.landmark(10)
        assert w.is_landmark
        assert w.basic_windows == 0

    def test_time_sliding(self):
        w = WindowSpec.time_sliding(10_000_000, 2_000_000)
        assert w.time_based
        assert w.basic_windows == 5

    def test_from_clause(self):
        clause = WindowClause("sliding", 200, 20, False)
        w = WindowSpec.from_clause(clause)
        assert w.size == 200 and w.step == 20

    def test_size_must_divide(self):
        with pytest.raises(UnsupportedQueryError):
            WindowSpec("sliding", 100, 30)

    def test_positive_step(self):
        with pytest.raises(UnsupportedQueryError):
            WindowSpec("sliding", 100, 0)

    def test_positive_size(self):
        with pytest.raises(UnsupportedQueryError):
            WindowSpec("sliding", 0, 1)

    def test_landmark_has_no_size(self):
        with pytest.raises(UnsupportedQueryError):
            WindowSpec("landmark", 10, 5)

    def test_unknown_kind(self):
        with pytest.raises(UnsupportedQueryError):
            WindowSpec("wavy", 10, 5)

    def test_time_helper_checks_divisibility(self):
        with pytest.raises(UnsupportedQueryError):
            WindowSpec.time_sliding(10, 3)


class TestHoppingWindowsWithGaps:
    """Regression: ``step > size`` used to be silently coerced to a
    tumbling window (``step := size``), quietly changing the query's
    semantics — every constructor path must refuse instead."""

    def test_sliding_helper_raises_instead_of_coercing(self):
        with pytest.raises(UnsupportedQueryError, match="gaps"):
            WindowSpec.sliding(10, 20)

    def test_direct_construction_raises(self):
        with pytest.raises(UnsupportedQueryError, match="step 20 > size 10"):
            WindowSpec("sliding", 10, 20)
        with pytest.raises(UnsupportedQueryError, match="gaps"):
            WindowSpec("tumbling", 10, 20)

    def test_time_sliding_helper_raises(self):
        with pytest.raises(UnsupportedQueryError, match="gaps"):
            WindowSpec.time_sliding(1_000_000, 2_000_000)

    def test_from_clause_raises(self):
        clause = WindowClause("sliding", 10, 20, False)
        with pytest.raises(UnsupportedQueryError, match="gaps"):
            WindowSpec.from_clause(clause)

    @pytest.mark.parametrize("mode", ["incremental", "reeval"])
    def test_sql_submit_path_raises(self, mode):
        """`RANGE 10 SLIDE 20` parses, but submit must refuse it for both
        execution strategies (previously the binder-level coercion meant
        it silently ran as RANGE 10 SLIDE 10)."""
        from repro import DataCellEngine

        engine = DataCellEngine()
        engine.create_stream("s", [("x1", "int")])
        with pytest.raises(UnsupportedQueryError, match="gaps"):
            engine.submit("SELECT count(*) FROM s [RANGE 10 SLIDE 20]", mode=mode)

"""Tests for the paper's extension features: landmark resets and
explicit watermark advancement (punctuations)."""

import numpy as np
import pytest

from repro import DataCellEngine
from repro.errors import UnsupportedQueryError

US = 1_000_000


@pytest.fixture
def engine():
    e = DataCellEngine()
    e.create_stream("s", [("x1", "int"), ("x2", "int")])
    e.create_stream("s2", [("x1", "int"), ("x2", "int")])
    return e


class TestLandmarkReset:
    def test_reset_restarts_accumulation(self, engine):
        query = engine.submit("SELECT sum(x2), count(*) FROM s [LANDMARK SLIDE 10]")
        engine.feed("s", columns={"x1": np.zeros(30, np.int64),
                                  "x2": np.full(30, 5, np.int64)})
        engine.run_until_idle()
        assert query.results()[-1].rows() == [(150, 30)]
        query.factory.reset_landmark()
        engine.feed("s", columns={"x1": np.zeros(10, np.int64),
                                  "x2": np.full(10, 7, np.int64)})
        engine.run_until_idle()
        # only post-reset tuples count
        assert query.results()[-1].rows() == [(70, 10)]

    def test_reset_join_landmark(self, engine):
        query = engine.submit(
            "SELECT count(*) FROM s a [LANDMARK SLIDE 10], s2 b [LANDMARK SLIDE 10] "
            "WHERE a.x2 = b.x2"
        )
        ones = {"x1": np.zeros(20, np.int64), "x2": np.ones(20, np.int64)}
        engine.feed("s", columns=ones)
        engine.feed("s2", columns=ones)
        engine.run_until_idle()
        assert query.results()[-1].rows() == [(400,)]
        query.factory.reset_landmark()
        engine.feed("s", columns={k: v[:10] for k, v in ones.items()})
        engine.feed("s2", columns={k: v[:10] for k, v in ones.items()})
        engine.run_until_idle()
        assert query.results()[-1].rows() == [(100,)]

    def test_reset_rejected_for_sliding(self, engine):
        query = engine.submit("SELECT count(*) FROM s [RANGE 10 SLIDE 5]")
        with pytest.raises(UnsupportedQueryError):
            query.factory.reset_landmark()


class TestWatermarks:
    SQL = "SELECT count(*) FROM s [RANGE 40 SECONDS SLIDE 10 SECONDS]"

    def test_punctuation_closes_windows_in_silence(self, engine):
        query = engine.submit(self.SQL)
        engine.feed(
            "s",
            columns={"x1": [1, 2], "x2": [0, 0]},
            timestamps=[0, 5 * US],
        )
        engine.run_until_idle()
        assert query.results() == []  # window [0, 40s) still open
        engine.advance_time("s", 41 * US)
        engine.run_until_idle()
        assert len(query.results()) == 1
        assert query.results()[0].rows() == [(2,)]

    def test_punctuation_closes_multiple_windows(self, engine):
        query = engine.submit(self.SQL)
        engine.feed("s", columns={"x1": [1], "x2": [0]}, timestamps=[0])
        engine.advance_time("s", 71 * US)
        engine.run_until_idle()
        # boundaries 40s, 50s, 60s, 70s have all passed; the single tuple at
        # t=0 only lives in the first window [0, 40s)
        assert [b.rows() for b in query.results()] == [[(1,)], [(0,)], [(0,)], [(0,)]]

    def test_watermark_never_regresses(self, engine):
        query = engine.submit(self.SQL)
        engine.feed("s", columns={"x1": [1], "x2": [0]}, timestamps=[0])
        engine.advance_time("s", 45 * US)
        engine.advance_time("s", 1 * US)  # ignored
        basket = query.baskets["s"]
        assert basket.max_timestamp() == 45 * US

    def test_unknown_stream(self, engine):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            engine.advance_time("ghost", 1)

    def test_reeval_also_fires_on_watermark(self, engine):
        query = engine.submit(self.SQL, mode="reeval")
        engine.feed("s", columns={"x1": [1, 2], "x2": [0, 0]}, timestamps=[0, US])
        engine.advance_time("s", 50 * US)
        engine.run_until_idle()
        assert len(query.results()) == 2
        assert query.results()[0].rows() == [(2,)]

"""The plan resource-bound analyzer: lattice, bounds, diagnostics, CLI."""

import io
from pathlib import Path

import pytest

from repro.analysis.lint import run_lint_cli
from repro.analysis.resources import (
    UNBOUNDED,
    Bound,
    analyze_resources,
    combine_compacts,
)
from repro.core.engine import DataCellEngine
from repro.core.overflow import ShedOldest
from repro.core.rewriter import rewrite
from repro.errors import ReproError
from repro.sql.optimizer import optimize
from repro.sql.planner import plan_query

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "check"


def plan_for(sql, limits=None, streams=None):
    engine = DataCellEngine()
    for name, (cap, overflow) in (limits or {"s": (None, None)}).items():
        engine.create_stream(
            name,
            (streams or {}).get(name, [("a", "int"), ("b", "int")]),
            capacity=cap,
            overflow=overflow,
        )
    plan = rewrite(optimize(plan_query(sql, engine.catalog)))
    return plan, engine._stream_limits


def analyze(sql, limits=None, streams=None):
    plan, stream_limits = plan_for(sql, limits, streams)
    return analyze_resources(plan, stream_limits, subject="test")


# ----------------------------------------------------------------------
# the bound lattice
# ----------------------------------------------------------------------
def test_bound_algebra():
    w = Bound(1, 1)
    assert Bound(3).add(Bound(4)) == Bound(7)
    assert Bound(3).mul(Bound(4)) == Bound(12)
    assert w.mul(w) == Bound(1, 2)
    assert Bound(2, 1).add(Bound(5)) == Bound(7, 1)  # degree dominates
    assert Bound(0).mul(UNBOUNDED) == Bound(0)
    assert not UNBOUNDED.add(Bound(1)).finite
    assert Bound(2).min_with(w) == Bound(2)  # constants below symbols
    assert Bound(2).max_with(w) == w


def test_bound_render():
    assert Bound(12).render() == "12"
    assert Bound(1, 1).render() == "W"
    assert Bound(3, 2).render() == "3·W^2"
    assert UNBOUNDED.render() == "unbounded"


# ----------------------------------------------------------------------
# per-plan bounds
# ----------------------------------------------------------------------
def test_sliding_aggregate_state_is_one_partial_per_window():
    result = analyze("SELECT sum(a) AS x FROM s [RANGE 100 SLIDE 10]")
    assert result.ok and result.bounded
    [alias] = result.aliases
    assert alias.window_tuples == Bound(10)
    assert alias.live_windows == Bound(10)
    assert alias.state == Bound(10)  # one scalar partial per basic window


def test_select_only_state_scales_with_window():
    result = analyze("SELECT a, b FROM s [RANGE 100 SLIDE 10] WHERE a > 5")
    assert result.bounded
    # Two columns × 10 tuples × 10 live windows.
    assert result.total_state == Bound(200)


def test_landmark_aggregate_compacts_to_constant_state():
    plan, limits = plan_for("SELECT sum(a) AS x FROM s [LANDMARK SLIDE 10]")
    assert combine_compacts(plan)
    result = analyze_resources(plan, limits)
    assert result.bounded
    assert not result.report.warnings()


def test_landmark_select_is_flagged_unbounded():
    result = analyze("SELECT a FROM s [LANDMARK SLIDE 10] WHERE a > 3")
    assert not result.bounded
    [warning] = result.report.warnings()
    assert warning.code == "unbounded-landmark"
    assert "landmark" in warning.message
    assert result.ok  # a warning, not an error: the engine accepts it


def test_capacity_below_one_basic_window_is_an_error():
    result = analyze(
        "SELECT sum(a) AS x FROM s [RANGE 100 SLIDE 10]", limits={"s": (5, None)}
    )
    assert not result.ok
    [error] = result.report.errors()
    assert error.code == "capacity-starved"
    assert "never fire" in error.message


def test_tight_shedding_capacity_warns():
    result = analyze(
        "SELECT sum(a) AS x FROM s [RANGE 100 SLIDE 10]",
        limits={"s": (15, ShedOldest())},
    )
    assert result.ok
    [warning] = result.report.warnings()
    assert warning.code == "capacity-tight"


def test_join_fanout_warning_and_pair_bounds():
    result = analyze(
        "SELECT max(s.a) AS x FROM s [RANGE 1024 SLIDE 8], r [RANGE 1024 SLIDE 8] "
        "WHERE s.a = r.a",
        limits={"s": (None, None), "r": (None, None)},
    )
    assert result.join_pairs == Bound(128 * 128)
    assert any(d.code == "join-fanout" for d in result.report.warnings())


def test_time_based_window_keeps_the_symbol():
    result = analyze("SELECT avg(a) AS x FROM s [RANGE 40 SECONDS SLIDE 10 SECONDS]")
    assert result.bounded
    [alias] = result.aliases
    assert alias.window_tuples == Bound(1, 1)
    assert alias.basket_need == Bound(1, 1)  # unknown, never "starved"


def test_report_json_roundtrip():
    result = analyze("SELECT sum(a) AS x FROM s [RANGE 100 SLIDE 10]")
    data = result.to_json()
    assert data["bounded"] is True
    assert data["total_state"]["text"] == "10"
    assert data["aliases"][0]["window"]["kind"] == "sliding"


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------
def test_submit_attaches_resources_to_the_handle():
    engine = DataCellEngine()
    engine.create_stream("s", [("a", "int")])
    handle = engine.submit("SELECT sum(a) AS x FROM s [RANGE 40 SLIDE 10]")
    assert handle.resources is not None
    assert handle.resources.bounded
    reeval = engine.submit(
        "SELECT sum(a) AS x FROM s [RANGE 40 SLIDE 10]", mode="reeval"
    )
    assert reeval.resources is None


def test_verify_plans_raises_on_capacity_starvation():
    engine = DataCellEngine(verify_plans=True)
    engine.create_stream("s", [("a", "int")], capacity=5)
    with pytest.raises(ReproError, match="capacity-starved|capacity 5"):
        engine.submit("SELECT sum(a) AS x FROM s [RANGE 40 SLIDE 10]")
    # Without verify mode the same submit goes through (warn-at-runtime).
    lenient = DataCellEngine()
    lenient.create_stream("s", [("a", "int")], capacity=5)
    handle = lenient.submit("SELECT sum(a) AS x FROM s [RANGE 40 SLIDE 10]")
    assert not handle.resources.ok


# ----------------------------------------------------------------------
# repro lint --resources
# ----------------------------------------------------------------------
def run_lint(argv):
    out = io.StringIO()
    code = run_lint_cli(argv, out=out)
    return code, out.getvalue()


def test_lint_resources_reports_finite_bounds_for_shipped_queries():
    repo = Path(__file__).resolve().parent.parent
    code, output = run_lint(
        ["--resources", str(repo / "examples"), str(repo / "benchmarks")]
    )
    assert code == 0, output
    assert "state bound:" in output
    # Acceptance: every shipped query has a finite bound (the landmark
    # examples all aggregate, so they compact).
    assert "state bound: unbounded" not in output


def test_lint_resources_flags_the_landmark_fixture():
    code, output = run_lint(
        ["--resources", str(FIXTURES / "landmark_example.py")]
    )
    assert code == 0, output  # warning-severity: reported, not fatal
    assert "unbounded-landmark" in output
    assert "state bound: unbounded" in output


def test_lint_sql_resources_with_declared_schema():
    code, output = run_lint(
        [
            "--resources",
            "--sql",
            "SELECT sum(x) AS t FROM s [RANGE 64 SLIDE 8]",
            "--stream",
            "s(x int)",
        ]
    )
    assert code == 0, output
    assert "state bound: 8" in output

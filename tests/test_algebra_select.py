"""Unit and property tests for selection operators."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import KernelError
from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT
from repro.kernel.algebra.select import (
    difference_candidates,
    intersect_candidates,
    mask_select,
    select,
    thetaselect,
    union_candidates,
)

from conftest import int_bat, str_bat


class TestRangeSelect:
    def test_closed_range(self):
        b = int_bat([1, 5, 3, 9, 5])
        assert select(b, 3, 5).to_list() == [1, 2, 4]

    def test_open_bounds(self):
        b = int_bat([1, 5, 3, 9, 5])
        assert select(b, None, 4).to_list() == [0, 2]
        assert select(b, 5, None).to_list() == [1, 3, 4]
        assert select(b, None, None).to_list() == [0, 1, 2, 3, 4]

    def test_exclusive_bounds(self):
        b = int_bat([1, 2, 3, 4])
        assert select(b, 1, 4, low_inclusive=False, high_inclusive=False).to_list() == [1, 2]

    def test_hseq_offsets_results(self):
        b = int_bat([1, 5, 9], hseq=100)
        assert select(b, 5, 9).to_list() == [101, 102]

    def test_with_candidates(self):
        b = int_bat([1, 5, 3, 9, 5])
        cand = BAT.from_values([1, 3], Atom.OID)
        assert select(b, 5, 9, candidates=cand).to_list() == [1, 3]

    def test_empty_input(self):
        assert select(BAT.empty(Atom.INT), 0, 10).to_list() == []


class TestThetaSelect:
    @pytest.mark.parametrize(
        "op,expected",
        [
            ("==", [1, 4]),
            ("!=", [0, 2, 3]),
            ("<", [0, 2]),
            ("<=", [0, 1, 2, 4]),
            (">", [3]),
            (">=", [1, 3, 4]),
        ],
    )
    def test_all_operators(self, op, expected):
        b = int_bat([1, 5, 3, 9, 5])
        assert thetaselect(b, 5, op).to_list() == expected

    def test_unknown_operator(self):
        with pytest.raises(KernelError):
            thetaselect(int_bat([1]), 1, "~")

    def test_string_column(self):
        b = str_bat(["b", "a", "c", "b"])
        assert thetaselect(b, "b", "==").to_list() == [0, 3]
        assert thetaselect(b, "b", ">").to_list() == [2]

    def test_with_candidates_composes(self):
        b = int_bat([1, 5, 3, 9, 5])
        first = thetaselect(b, 2, ">")  # oids 1,2,3,4
        second = thetaselect(b, 6, "<", candidates=first)
        assert second.to_list() == [1, 2, 4]

    @given(st.lists(st.integers(-50, 50), max_size=100), st.integers(-50, 50))
    def test_matches_python_filter(self, values, pivot):
        b = int_bat(values)
        got = thetaselect(b, pivot, ">").to_list()
        expected = [i for i, v in enumerate(values) if v > pivot]
        assert got == expected


class TestMaskSelect:
    def test_basic(self):
        mask = BAT.from_values([True, False, True], Atom.BIT)
        assert mask_select(mask).to_list() == [0, 2]

    def test_requires_bit(self):
        with pytest.raises(KernelError):
            mask_select(int_bat([1, 0]))

    def test_with_candidates(self):
        mask = BAT.from_values([True, False, True, True], Atom.BIT)
        cand = BAT.from_values([1, 2], Atom.OID)
        assert mask_select(mask, cand).to_list() == [2]


class TestCandidateSetOps:
    def test_intersect(self):
        a = BAT.from_values([1, 3, 5], Atom.OID)
        b = BAT.from_values([3, 4, 5], Atom.OID)
        assert intersect_candidates(a, b).to_list() == [3, 5]

    def test_union(self):
        a = BAT.from_values([1, 3], Atom.OID)
        b = BAT.from_values([2, 3], Atom.OID)
        assert union_candidates(a, b).to_list() == [1, 2, 3]

    def test_difference(self):
        a = BAT.from_values([1, 2, 3], Atom.OID)
        b = BAT.from_values([2], Atom.OID)
        assert difference_candidates(a, b).to_list() == [1, 3]

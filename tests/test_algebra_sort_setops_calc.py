"""Unit tests for ordering, set, and calculator operators."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import KernelError, TypeMismatchError
from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT
from repro.kernel.algebra.calc import (
    arith,
    compare,
    constant_column,
    divide,
    logic_and,
    logic_not,
    logic_or,
    negate,
)
from repro.kernel.algebra.setops import append, concat, slice_bat, unique
from repro.kernel.algebra.sort import firstn, sort, sort_refine

from conftest import flt_bat, int_bat, str_bat


class TestSort:
    def test_ascending(self):
        values, order = sort(int_bat([3, 1, 2]))
        assert values.to_list() == [1, 2, 3]
        assert order.to_list() == [1, 2, 0]

    def test_descending(self):
        values, order = sort(int_bat([3, 1, 2]), descending=True)
        assert values.to_list() == [3, 2, 1]
        assert order.to_list() == [0, 2, 1]

    def test_stable(self):
        __, order = sort(int_bat([2, 1, 2, 1]))
        assert order.to_list() == [1, 3, 0, 2]

    def test_order_absolute_oids(self):
        __, order = sort(int_bat([5, 3], hseq=7))
        assert order.to_list() == [8, 7]

    def test_refine_multi_key(self):
        # ORDER BY k1, k2: sort by k2 first, refine by k1 (stable).
        k1 = int_bat([1, 0, 1, 0])
        k2 = int_bat([5, 9, 3, 7])
        __, order = sort(k2)
        order = sort_refine(order, k1)
        assert order.to_list() == [3, 1, 2, 0]

    def test_firstn(self):
        assert firstn(int_bat([5, 1, 3]), 2).to_list() == [1, 2]
        assert firstn(int_bat([5, 1, 3]), 2, descending=True).to_list() == [0, 2]


class TestSetOps:
    def test_concat(self):
        out = concat([int_bat([1, 2]), int_bat([3]), int_bat([])])
        assert out.to_list() == [1, 2, 3]

    def test_concat_copies_single_part(self):
        base = int_bat([1, 2])
        out = concat([base])
        assert out.to_list() == [1, 2]
        assert out.tail is not base.tail

    def test_concat_empty_list_raises(self):
        with pytest.raises(KernelError):
            concat([])

    def test_concat_type_mismatch(self):
        with pytest.raises(TypeMismatchError):
            concat([int_bat([1]), flt_bat([1.0])])

    def test_concat_all_empty(self):
        out = concat([BAT.empty(Atom.INT), BAT.empty(Atom.INT)])
        assert out.to_list() == []

    def test_append(self):
        out = append(int_bat([1], hseq=4), int_bat([2, 3]))
        assert out.to_list() == [1, 2, 3]
        assert out.hseq == 4

    def test_slice_bat(self):
        assert slice_bat(int_bat([1, 2, 3, 4]), 1, 3).to_list() == [2, 3]

    def test_unique(self):
        assert unique(int_bat([2, 1, 2])).to_list() == [1, 2]


class TestCalc:
    def test_arith_bat_bat(self):
        out = arith("+", int_bat([1, 2]), int_bat([10, 20]))
        assert out.to_list() == [11, 22]

    def test_arith_bat_scalar(self):
        assert arith("*", int_bat([1, 2]), 3).to_list() == [3, 6]
        assert arith("-", 10, int_bat([1, 2])).to_list() == [9, 8]

    def test_arith_promotes(self):
        out = arith("+", int_bat([1]), flt_bat([0.5]))
        assert out.atom == Atom.FLT

    def test_modulo(self):
        assert arith("%", int_bat([5, 7]), 3).to_list() == [2, 1]

    def test_divide_always_float(self):
        out = divide(int_bat([7, 8]), 2)
        assert out.atom == Atom.FLT
        assert out.to_list() == [3.5, 4.0]

    def test_divide_by_zero_nan(self):
        out = divide(int_bat([1]), int_bat([0]))
        assert np.isnan(out.to_list()[0])

    def test_compare(self):
        out = compare("<", int_bat([1, 5]), 3)
        assert out.atom == Atom.BIT
        assert out.to_list() == [True, False]

    def test_compare_string_with_number_rejected(self):
        with pytest.raises(TypeMismatchError):
            compare("==", str_bat(["a"]), 1)

    def test_logic(self):
        a = BAT.from_values([True, True, False], Atom.BIT)
        b = BAT.from_values([True, False, False], Atom.BIT)
        assert logic_and(a, b).to_list() == [True, False, False]
        assert logic_or(a, b).to_list() == [True, True, False]
        assert logic_not(a).to_list() == [False, False, True]

    def test_logic_requires_bit(self):
        with pytest.raises(TypeMismatchError):
            logic_and(int_bat([1]), int_bat([1]))

    def test_negate(self):
        assert negate(int_bat([1, -2])).to_list() == [-1, 2]
        with pytest.raises(TypeMismatchError):
            negate(str_bat(["a"]))

    def test_misaligned_operands(self):
        from repro.errors import AlignmentError

        with pytest.raises(AlignmentError):
            arith("+", int_bat([1, 2]), int_bat([1], hseq=1))

    def test_constant_column(self):
        out = constant_column(7, Atom.INT, 3)
        assert out.to_list() == [7, 7, 7]
        out = constant_column("x", Atom.STR, 2)
        assert out.to_list() == ["x", "x"]

    def test_needs_a_bat(self):
        with pytest.raises(KernelError):
            arith("+", 1, 2)

    @given(
        st.lists(st.integers(-100, 100), min_size=1, max_size=50),
        st.integers(-100, 100),
    )
    def test_add_scalar_matches_python(self, values, scalar):
        out = arith("+", int_bat(values), scalar)
        assert out.to_list() == [v + scalar for v in values]

"""Behavioural tests for landmark windows (fixed start, growing window)."""

import numpy as np
import pytest

from repro import DataCellEngine

from conftest import assert_rows_equal, ref_q1, ref_q3


@pytest.fixture
def engine():
    e = DataCellEngine()
    e.create_stream("s", [("x1", "int"), ("x2", "int")])
    e.create_stream("s2", [("x1", "int"), ("x2", "int")])
    return e


def feed(engine, stream, count, seed=0):
    rng = np.random.default_rng(seed)
    x1 = rng.integers(0, 100, count).astype(np.int64)
    x2 = rng.integers(0, 50, count).astype(np.int64)
    engine.feed(stream, columns={"x1": x1, "x2": x2})
    return x1, x2


class TestLandmarkSingle:
    Q3 = "SELECT max(x1), sum(x2) FROM s [LANDMARK SLIDE 25] WHERE x1 > 30"

    def test_results_cover_growing_prefix(self, engine):
        query = engine.submit(self.Q3)
        x1, x2 = feed(engine, "s", 200, seed=11)
        engine.run_until_idle()
        results = query.results()
        assert len(results) == 8
        for k, batch in enumerate(results):
            hi = (k + 1) * 25
            assert_rows_equal(batch.rows(), ref_q3(x1[:hi], x2[:hi], 30))

    def test_matches_reevaluation(self, engine):
        qi = engine.submit(self.Q3)
        qr = engine.submit(self.Q3, mode="reeval")
        feed(engine, "s", 300, seed=12)
        engine.run_until_idle()
        assert qi.result_rows() == qr.result_rows()

    def test_partials_compacted(self, engine):
        """Landmark stores one cumulative bundle, not one per step."""
        query = engine.submit(self.Q3)
        feed(engine, "s", 250, seed=13)
        engine.run_until_idle()
        assert len(query.factory._store) == 1

    def test_grouped_landmark(self, engine):
        sql = "SELECT x1, count(*) FROM s [LANDMARK SLIDE 20] GROUP BY x1 ORDER BY x1"
        qi = engine.submit(sql)
        qr = engine.submit(sql, mode="reeval")
        feed(engine, "s", 200, seed=14)
        engine.run_until_idle()
        assert qi.result_rows() == qr.result_rows()

    def test_select_only_landmark_accumulates(self, engine):
        sql = "SELECT x1 FROM s [LANDMARK SLIDE 10] WHERE x1 > 90"
        qi = engine.submit(sql)
        x1, __ = feed(engine, "s", 100, seed=15)
        engine.run_until_idle()
        results = qi.results()
        assert len(results) == 10
        for k, batch in enumerate(results):
            expected = [(int(v),) for v in x1[: (k + 1) * 10] if v > 90]
            assert batch.rows() == expected


class TestLandmarkJoin:
    SQL = (
        "SELECT count(*) FROM s s1 [LANDMARK SLIDE 20], s2 [LANDMARK SLIDE 20] "
        "WHERE s1.x2 = s2.x2"
    )

    def test_matches_reevaluation(self, engine):
        qi = engine.submit(self.SQL)
        qr = engine.submit(self.SQL, mode="reeval")
        rng = np.random.default_rng(16)
        for stream in ("s", "s2"):
            engine.feed(
                stream,
                columns={
                    "x1": rng.integers(0, 10, 100),
                    "x2": rng.integers(0, 25, 100),
                },
            )
        engine.run_until_idle()
        assert len(qi.results()) == 5
        assert qi.result_rows() == qr.result_rows()

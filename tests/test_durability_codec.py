"""Property tests for the durability codec (segments + snapshots).

Three layers, each with a round-trip law and a corruption law:

* column codec — :func:`encode_array`/:func:`decode_array` are inverses
  for every atom, including NaN/inf floats, empty columns, unicode and
  NULL strings;
* state codec — :func:`pack_state`/:func:`unpack_state` rebuild BAT and
  ndarray leaves inside arbitrary JSON-shaped trees;
* frame codec — :func:`encode_frame`/:func:`iter_frames` round-trip a
  record sequence, and *any* torn tail or flipped payload byte ends
  iteration cleanly at the last valid record (the recovery guarantee:
  replay resumes from the longest valid prefix, never raises).

Hypothesis profiles come from ``tests/conftest.py`` (derandomized under
``HYPOTHESIS_PROFILE=ci``).  Tests that need files build their own
temporary directories per example — function-scoped pytest fixtures do
not mix with ``@given``.
"""

from __future__ import annotations

import math
import os
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.durability import (
    DurabilityError,
    DurabilityManager,
    decode_array,
    encode_array,
    encode_frame,
    iter_frames,
    list_segments,
    pack_state,
    typed_values,
    unpack_state,
)
from repro.kernel.atoms import Atom, numpy_dtype
from repro.kernel.bat import BAT

pytestmark = pytest.mark.recovery

_FIXED_ATOMS = (Atom.OID, Atom.INT, Atom.BIT, Atom.TIMESTAMP)

ints = st.integers(min_value=-(2**62), max_value=2**62)
floats = st.floats(allow_nan=True, allow_infinity=True, width=64)
texts = st.one_of(st.none(), st.text(max_size=40))


def _columns_equal(left: np.ndarray, right: np.ndarray, atom: Atom) -> bool:
    if len(left) != len(right):
        return False
    if atom is Atom.STR:
        return all(a == b for a, b in zip(left, right))
    if atom is Atom.FLT:
        return bool(np.array_equal(left, right, equal_nan=True))
    return bool(np.array_equal(left, right))


@given(values=st.lists(ints, max_size=50), atom=st.sampled_from(_FIXED_ATOMS))
def test_fixed_atom_round_trip(values, atom):
    column = typed_values(values, atom)
    blob = encode_array(column, atom)
    back = decode_array(blob, atom, len(column))
    assert back.dtype == numpy_dtype(atom)
    assert _columns_equal(column, back, atom)


@given(values=st.lists(floats, max_size=50))
def test_float_round_trip_bitwise(values):
    """Floats survive bit-exactly — NaN payloads and signed zeros too."""
    column = typed_values(values, Atom.FLT)
    back = decode_array(encode_array(column, Atom.FLT), Atom.FLT, len(column))
    assert column.tobytes() == back.tobytes()
    for original, decoded in zip(column, back):
        assert math.isnan(original) == math.isnan(decoded)


@given(values=st.lists(texts, max_size=30))
def test_str_round_trip_unicode_and_null(values):
    column = typed_values(values, Atom.STR)
    back = decode_array(encode_array(column, Atom.STR), Atom.STR, len(column))
    assert _columns_equal(column, back, Atom.STR)
    # NULL (None) and empty string are distinct on the wire.
    assert [v is None for v in column] == [v is None for v in back]


def test_empty_columns_round_trip():
    for atom in Atom:
        column = typed_values([], atom)
        assert len(decode_array(encode_array(column, atom), atom, 0)) == 0


def test_short_blob_detected():
    blob = encode_array(typed_values([1, 2, 3], Atom.INT), Atom.INT)
    with pytest.raises(DurabilityError):
        decode_array(blob[:-1], Atom.INT, 3)


# ----------------------------------------------------------------------
# state codec
# ----------------------------------------------------------------------
_leaf = st.one_of(
    st.none(), st.booleans(), ints, floats, st.text(max_size=20)
)
_state = st.recursive(
    _leaf,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.text(max_size=8).filter(lambda k: k not in ("__bat__", "__arr__")),
            children,
            max_size=4,
        ),
    ),
    max_leaves=20,
)


@given(state=_state)
def test_pack_state_round_trip_plain(state):
    skeleton, blobs = pack_state(state)
    back = unpack_state(skeleton, blobs)

    def canon(node):
        if isinstance(node, tuple):
            return [canon(x) for x in node]
        if isinstance(node, list):
            return [canon(x) for x in node]
        if isinstance(node, dict):
            return {k: canon(v) for k, v in node.items()}
        if isinstance(node, float) and math.isnan(node):
            return "nan"
        return node

    assert canon(back) == canon(state)


@given(
    tail=st.lists(ints, max_size=20),
    hseq=st.integers(min_value=0, max_value=2**32),
    extra=st.lists(floats, max_size=10),
)
def test_pack_state_round_trip_bat_and_array(tail, hseq, extra):
    state = {
        "window": BAT(typed_values(tail, Atom.INT), Atom.INT, hseq),
        "partials": typed_values(extra, Atom.FLT),
        "count": np.int64(len(tail)),
    }
    back = unpack_state(*pack_state(state))
    bat = back["window"]
    assert isinstance(bat, BAT)
    assert bat.atom is Atom.INT and bat.hseq == hseq
    assert _columns_equal(bat.tail, state["window"].tail, Atom.INT)
    assert _columns_equal(back["partials"], state["partials"], Atom.FLT)
    assert back["count"] == len(tail) and isinstance(back["count"], int)


def test_pack_state_rejects_non_string_keys_and_reserved():
    with pytest.raises(DurabilityError):
        pack_state({1: "x"})
    with pytest.raises(DurabilityError):
        pack_state({"__bat__": []})
    with pytest.raises(DurabilityError):
        pack_state({"x": object()})


# ----------------------------------------------------------------------
# frame codec: torn tails and corruption
# ----------------------------------------------------------------------
_frame_payloads = st.lists(
    st.lists(st.binary(max_size=12), max_size=3), min_size=1, max_size=6
)


def _write_frames(path: str, payloads) -> list[int]:
    """Write one frame per payload list; returns cumulative end offsets."""
    ends: list[int] = []
    offset = 0
    with open(path, "wb") as fh:
        for seq, blobs in enumerate(payloads):
            frame = encode_frame({"seq": seq, "kind": "feed"}, list(blobs))
            fh.write(frame)
            offset += len(frame)
            ends.append(offset)
    return ends


@given(payloads=_frame_payloads)
def test_frame_round_trip(payloads):
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "seg.log")
        _write_frames(path, payloads)
        decoded = list(iter_frames(path))
    assert len(decoded) == len(payloads)
    for seq, ((header, blobs), expected) in enumerate(zip(decoded, payloads)):
        assert header["seq"] == seq
        assert blobs == list(expected)


@given(payloads=_frame_payloads, data=st.data())
def test_truncated_tail_yields_longest_valid_prefix(payloads, data):
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "seg.log")
        ends = _write_frames(path, payloads)
        cut = data.draw(st.integers(min_value=0, max_value=ends[-1] - 1))
        with open(path, "r+b") as fh:
            fh.truncate(cut)
        decoded = list(iter_frames(path))
    # Exactly the frames wholly inside the first `cut` bytes survive.
    expected = sum(1 for end in ends if end <= cut)
    assert len(decoded) == expected


@given(payloads=_frame_payloads, data=st.data())
def test_flipped_byte_stops_at_corrupt_frame(payloads, data):
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "seg.log")
        ends = _write_frames(path, payloads)
        victim = data.draw(
            st.integers(min_value=0, max_value=len(payloads) - 1)
        )
        start = ends[victim - 1] if victim else 0
        # Flip one payload byte (past the 16-byte fixed header, so the
        # frame still *parses* — only its CRC gives the damage away).
        position = data.draw(
            st.integers(min_value=start + 16, max_value=ends[victim] - 1)
        )
        with open(path, "r+b") as fh:
            fh.seek(position)
            byte = fh.read(1)
            fh.seek(position)
            fh.write(bytes([byte[0] ^ 0x5A]))
        decoded = list(iter_frames(path))
    # Iteration serves everything before the corrupt frame, then stops.
    assert len(decoded) == victim


@settings(max_examples=25)
@given(count=st.integers(min_value=1, max_value=6), data=st.data())
def test_journal_replay_resumes_from_last_valid_record(count, data):
    """A torn append to the live segment never loses earlier records."""
    with tempfile.TemporaryDirectory() as tmp:
        dur = DurabilityManager(tmp)
        dur.resume(0)
        seqs = [
            dur.journal("feed", {"stream": "s", "rows": list(range(i))})
            for i in range(count)
        ]
        dur.close()
        assert seqs == list(range(1, count + 1))
        # Tear the tail: half of a valid frame, as a crashed append leaves.
        torn = encode_frame({"kind": "feed", "seq": count + 1}, [b"oops"])
        cut = data.draw(st.integers(min_value=1, max_value=len(torn) - 1))
        __, path = list_segments(tmp)[-1]
        with open(path, "ab") as fh:
            fh.write(torn[:cut])
        reader = DurabilityManager(tmp)
        replayed = list(reader.replay_records(0))
        reader.close()
    assert [seq for seq, __, __ in replayed] == seqs
    assert all(kind == "feed" for __, kind, __ in replayed)
    payloads = [payload for __, __, payload in replayed]
    assert payloads[-1]["rows"] == list(range(count - 1))

"""Tests for the benchmark drivers and reporting helpers."""

import numpy as np
import pytest

from repro import DataCellEngine
from repro.bench import (
    WindowTimings,
    drive_join,
    drive_landmark,
    drive_single,
    format_table,
    total_time_datacell,
    total_time_systemx,
)
from repro.dsms import SystemX
from repro.errors import ReproError
from repro.kernel.atoms import Atom
from repro.kernel.storage import Schema


@pytest.fixture
def engine():
    e = DataCellEngine()
    e.create_stream("s", [("x1", "int"), ("x2", "int")])
    e.create_stream("s2", [("x1", "int"), ("x2", "int")])
    return e


def columns(count, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "x1": rng.integers(0, 10, count).astype(np.int64),
        "x2": rng.integers(0, 10, count).astype(np.int64),
    }


class TestWindowTimings:
    def test_means(self):
        timings = WindowTimings(
            response_seconds=[10.0, 1.0, 3.0],
            breakdowns=[{"main": 1.0}, {"main": 2.0, "merge": 1.0}, {"merge": 3.0}],
        )
        assert timings.mean_response() == pytest.approx(14.0 / 3)
        assert timings.mean_response(skip_first=1) == pytest.approx(2.0)
        assert timings.tag_mean("merge", skip_first=1) == pytest.approx(2.0)

    def test_empty(self):
        timings = WindowTimings()
        assert timings.mean_response() == 0.0
        assert timings.tag_mean("main") == 0.0


class TestDrivers:
    def test_drive_single_counts_windows(self, engine):
        query = engine.submit("SELECT count(*) FROM s [RANGE 20 SLIDE 10]")
        timings = drive_single(engine, query, "s", columns(200), 20, 10, 5)
        assert len(timings.response_seconds) == 5
        assert timings.result_sizes == [1] * 5

    def test_drive_single_rejects_short_workload(self, engine):
        query = engine.submit("SELECT count(*) FROM s [RANGE 20 SLIDE 10]")
        with pytest.raises(ReproError):
            drive_single(engine, query, "s", columns(10), 20, 10, 5)

    def test_drive_single_chunked(self, engine):
        query = engine.submit("SELECT count(*) FROM s [RANGE 20 SLIDE 10]")
        timings = drive_single(engine, query, "s", columns(200), 20, 10, 4, chunk_m=5)
        assert len(timings.response_seconds) == 4

    def test_drive_landmark(self, engine):
        query = engine.submit("SELECT count(*) FROM s [LANDMARK SLIDE 10]")
        timings = drive_landmark(engine, query, "s", columns(100), 10, 6)
        assert len(timings.response_seconds) == 6

    def test_drive_join(self, engine):
        query = engine.submit(
            "SELECT count(*) FROM s a [RANGE 20 SLIDE 10], s2 b [RANGE 20 SLIDE 10] "
            "WHERE a.x2 = b.x2"
        )
        timings = drive_join(
            engine, query, "s", columns(100, 1), "s2", columns(100, 2), 20, 10, 4
        )
        assert len(timings.response_seconds) == 4

    def test_total_time_datacell(self, engine):
        query = engine.submit("SELECT count(*) FROM s [RANGE 32 SLIDE 16]")
        elapsed = total_time_datacell(engine, [("s", columns(200))], chunk=64)
        assert elapsed > 0
        assert len(query.results()) == (200 - 32) // 16 + 1

    def test_total_time_systemx(self):
        systemx = SystemX()
        systemx.create_stream("s", Schema.of(("x1", Atom.INT), ("x2", Atom.INT)))
        query = systemx.submit("SELECT count(*) FROM s [RANGE 32 SLIDE 16]")
        cols = columns(200)
        rows = list(zip(cols["x1"].tolist(), cols["x2"].tolist()))
        elapsed = total_time_systemx(systemx, [("s", rows)])
        assert elapsed > 0
        assert len(query.results) == (200 - 32) // 16 + 1


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table("T", ["a", "bb"], [(1, 0.5), (22, 0.0001)])
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert "1.00e-04" in table  # small floats in scientific notation

    def test_format_table_zero(self):
        assert "0" in format_table("T", ["x"], [(0.0,)])

"""Unit and property tests for join operators."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import TypeMismatchError
from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT
from repro.kernel.algebra.join import antijoin, join, semijoin

from conftest import int_bat, str_bat


def pairs(left, right):
    lo, ro = join(left, right)
    return sorted(zip(lo.to_list(), ro.to_list()))


class TestEquiJoin:
    def test_many_to_many(self):
        left = int_bat([1, 2, 2, 3])
        right = int_bat([2, 2, 4, 1])
        assert pairs(left, right) == [(0, 3), (1, 0), (1, 1), (2, 0), (2, 1)]

    def test_absolute_oids(self):
        left = int_bat([1, 2], hseq=10)
        right = int_bat([2, 1], hseq=20)
        assert pairs(left, right) == [(10, 21), (11, 20)]

    def test_no_matches(self):
        assert pairs(int_bat([1, 2]), int_bat([3, 4])) == []

    def test_empty_inputs(self):
        assert pairs(BAT.empty(Atom.INT), int_bat([1])) == []
        assert pairs(int_bat([1]), BAT.empty(Atom.INT)) == []

    def test_string_join(self):
        left = str_bat(["a", "b"])
        right = str_bat(["b", "b", "c"])
        assert pairs(left, right) == [(1, 0), (1, 1)]

    def test_mixed_numeric_ok(self):
        lo, ro = join(int_bat([1, 2]), BAT.from_values([2.0], Atom.FLT))
        assert list(zip(lo.to_list(), ro.to_list())) == [(1, 0)]

    def test_type_mismatch(self):
        with pytest.raises(TypeMismatchError):
            join(int_bat([1]), str_bat(["a"]))

    @given(
        st.lists(st.integers(0, 8), max_size=40),
        st.lists(st.integers(0, 8), max_size=40),
    )
    def test_matches_nested_loop(self, left_values, right_values):
        got = pairs(int_bat(left_values), int_bat(right_values))
        expected = sorted(
            (i, j)
            for i, lv in enumerate(left_values)
            for j, rv in enumerate(right_values)
            if lv == rv
        )
        assert got == expected


class TestSemiAntiJoin:
    def test_semijoin(self):
        assert semijoin(int_bat([1, 2, 3]), int_bat([2, 9])).to_list() == [1]

    def test_semijoin_hseq(self):
        assert semijoin(int_bat([1, 2], hseq=5), int_bat([2])).to_list() == [6]

    def test_antijoin(self):
        assert antijoin(int_bat([1, 2, 3]), int_bat([2])).to_list() == [0, 2]

    def test_antijoin_empty_right_keeps_all(self):
        assert antijoin(int_bat([1, 2], hseq=3), BAT.empty(Atom.INT)).to_list() == [3, 4]

    def test_empty_left(self):
        assert semijoin(BAT.empty(Atom.INT), int_bat([1])).to_list() == []
        assert antijoin(BAT.empty(Atom.INT), int_bat([1])).to_list() == []

"""Unit tests for tables and the catalog."""

import pytest

from repro.errors import CatalogError, KernelError
from repro.kernel.atoms import Atom
from repro.kernel.storage import Catalog, Schema, Table


class TestSchema:
    def test_names_and_atoms(self):
        schema = Schema.of(("a", Atom.INT), ("b", Atom.STR))
        assert schema.names == ("a", "b")
        assert schema.atom_of("b") == Atom.STR
        assert "a" in schema
        assert "z" not in schema
        assert len(schema) == 2

    def test_unknown_column(self):
        schema = Schema.of(("a", Atom.INT))
        with pytest.raises(CatalogError):
            schema.atom_of("nope")


class TestTable:
    def _table(self) -> Table:
        return Table("t", Schema.of(("k", Atom.INT), ("v", Atom.FLT)))

    def test_append_rows(self):
        table = self._table()
        assert table.append_rows([(1, 1.5), (2, 2.5)]) == 2
        assert table.count == 2
        assert table.column("k").to_list() == [1, 2]
        assert table.column("v").to_list() == [1.5, 2.5]

    def test_append_rows_bad_arity(self):
        with pytest.raises(KernelError):
            self._table().append_rows([(1,)])

    def test_append_columns(self):
        table = self._table()
        assert table.append_columns({"k": [1, 2, 3], "v": [0.1, 0.2, 0.3]}) == 3
        assert table.count == 3

    def test_append_columns_missing_column(self):
        with pytest.raises(KernelError):
            self._table().append_columns({"k": [1]})

    def test_append_columns_ragged(self):
        with pytest.raises(KernelError):
            self._table().append_columns({"k": [1], "v": [0.1, 0.2]})

    def test_columns_aligned(self):
        table = self._table()
        table.append_rows([(1, 1.0)])
        cols = table.columns()
        assert set(cols) == {"k", "v"}
        assert all(len(bat) == 1 for bat in cols.values())

    def test_unknown_column(self):
        with pytest.raises(CatalogError):
            self._table().column("zzz")


class TestCatalog:
    def test_create_and_lookup(self):
        cat = Catalog()
        cat.create_table("t", Schema.of(("a", Atom.INT)))
        cat.create_stream("s", Schema.of(("b", Atom.FLT)))
        assert cat.has_table("t")
        assert cat.has_stream("s")
        assert not cat.is_stream("t")
        assert cat.is_stream("s")
        assert cat.schema_of("t").names == ("a",)
        assert cat.schema_of("s").names == ("b",)

    def test_duplicate_names_rejected(self):
        cat = Catalog()
        cat.create_table("x", Schema.of(("a", Atom.INT)))
        with pytest.raises(CatalogError):
            cat.create_table("x", Schema.of(("a", Atom.INT)))
        with pytest.raises(CatalogError):
            cat.create_stream("x", Schema.of(("a", Atom.INT)))

    def test_unknown_lookups(self):
        cat = Catalog()
        with pytest.raises(CatalogError):
            cat.table("missing")
        with pytest.raises(CatalogError):
            cat.stream("missing")
        with pytest.raises(CatalogError):
            cat.schema_of("missing")
        with pytest.raises(CatalogError):
            cat.is_stream("missing")

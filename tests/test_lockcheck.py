"""Runtime lock-order conformance: ObservedLock, instrument(), fuzz axis."""

import threading

import pytest

from repro.core.engine import DataCellEngine
from repro.testing.fuzz.oracle import OracleConfig
from repro.testing.lockcheck import (
    LockObserver,
    LockOrderViolation,
    ObservedLock,
    instrument,
)


def observed_pair():
    observer = LockObserver()
    high = ObservedLock(threading.Lock(), "Scheduler._lock", observer)
    low = ObservedLock(threading.Lock(), "Basket._lock", observer)
    return observer, high, low


def test_edges_record_held_to_acquired():
    observer, high, low = observed_pair()
    with high:
        with low:
            pass
    [edge] = observer.edges()
    assert (edge.src, edge.dst) == ("Scheduler._lock", "Basket._lock")
    assert observer.violations() == []
    observer.assert_conforms()


def test_inverted_order_is_a_violation():
    observer, high, low = observed_pair()
    with low:
        with high:
            pass
    assert observer.violations()
    with pytest.raises(LockOrderViolation, match="Basket._lock -> Scheduler._lock"):
        observer.assert_conforms()


def test_same_node_nesting_is_a_violation():
    observer = LockObserver()
    a = ObservedLock(threading.Lock(), "Basket._lock", observer)
    b = ObservedLock(threading.Lock(), "Basket._lock", observer)
    with a:
        with b:
            pass
    [message] = observer.violations()
    assert "same node" in message


def test_reentrant_acquire_records_no_edge():
    observer = LockObserver()
    lock = ObservedLock(threading.RLock(), "Basket._lock", observer)
    with lock:
        with lock:
            pass
    assert observer.edges() == []
    # The stack unwound fully: a later acquire starts fresh.
    assert observer._stack() == []


def test_non_lifo_release_keeps_the_stack_consistent():
    observer, high, low = observed_pair()
    high.acquire()
    low.acquire()
    high.release()
    low.release()
    assert observer._stack() == []


def test_unranked_locks_are_ignored_by_violations():
    observer = LockObserver()
    odd = ObservedLock(threading.Lock(), "Mystery._lock", observer)
    high = ObservedLock(threading.Lock(), "Scheduler._lock", observer)
    with odd:
        with high:
            pass
    assert observer.edges()  # recorded ...
    assert observer.violations() == []  # ... but not judged


def test_instrument_live_engine_conforms():
    """End-to-end: a parallel engine run never escapes the static order."""
    engine = DataCellEngine(workers=2)
    engine.create_stream("s", [("a", "int"), ("b", "int")])
    handle = engine.submit("SELECT sum(a) AS x FROM s [RANGE 40 SLIDE 10]")
    engine.submit("SELECT a, b FROM s [RANGE 20 SLIDE 10] WHERE a > 5")
    observer = instrument(engine)
    try:
        engine.scheduler.start()
        for i in range(200):
            engine.feed("s", [(i, i + 1)])
    finally:
        engine.scheduler.stop()
    assert observer.acquisitions > 0
    observer.assert_conforms()
    assert handle.results()  # the instrumented engine still computes
    # Firing takes the basket lock under the registration's firing lock.
    assert any(
        (e.src, e.dst) == ("_Registration.firing_lock", "Basket._lock")
        for e in observer.edges()
    )


def test_instrument_is_idempotent():
    engine = DataCellEngine()
    engine.create_stream("s", [("a", "int")])
    engine.submit("SELECT sum(a) AS x FROM s [RANGE 4 SLIDE 2]")
    observer = instrument(engine)
    again = instrument(engine, observer)
    assert again is observer
    assert isinstance(engine.scheduler._lock, ObservedLock)
    assert engine.scheduler._lock._raw is not None
    # No double wrapping: the raw lock is a real lock, not another proxy.
    assert not isinstance(engine.scheduler._lock._raw, ObservedLock)


def test_oracle_config_lockcheck_roundtrip():
    config = OracleConfig(lockcheck=True)
    assert OracleConfig.from_json(config.to_json()).lockcheck is True
    assert "lockcheck" in config.describe()
    assert OracleConfig.from_json({}).lockcheck is False


def test_run_oracle_under_lockcheck_is_clean():
    from repro.testing.fuzz.generator import QueryGenerator
    import numpy as np

    from repro.testing.fuzz.oracle import run_oracle

    generator = QueryGenerator(np.random.default_rng([11, 3]))
    query = generator.query("sum")
    feed = generator.feed(query, rows_scale=0.5)
    result = run_oracle(query, feed, OracleConfig(workers=2, lockcheck=True))
    assert result.ok, result.divergence and result.divergence.describe()

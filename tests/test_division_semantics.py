"""Shared division semantics: dsms scalar ``/`` vs the kernel's calc.divide.

Both engines evaluate the same SQL, so ``x / y`` must mean the same thing
in the tuple-at-a-time SystemX simulator and in the vectorized kernel:
the quotient is always float, and a zero divisor yields NULL represented
in-band as NaN (never ``None``, never an exception, never +/-inf).
"""

import math

import numpy as np
from hypothesis import given, strategies as st

from repro.dsms.expr import compile_scalar
from repro.kernel.algebra import calc
from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT
from repro.sql.ast import BinOp, Literal

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
numbers = st.one_of(st.integers(-(10**9), 10**9), finite_floats)


def dsms_divide(a, b):
    """Evaluate ``a / b`` through the dsms scalar compiler."""
    fn = compile_scalar(BinOp("/", Literal(a), Literal(b)), None, {})
    return fn({})


def kernel_divide(a, b):
    """Evaluate ``a / b`` through the kernel's vectorized calc.divide."""
    def as_bat(value):
        if isinstance(value, int):
            return BAT.from_array(np.asarray([value], dtype=np.int64), Atom.INT)
        return BAT.from_array(np.asarray([value], dtype=np.float64), Atom.FLT)

    return calc.divide(as_bat(a), as_bat(b)).to_list()[0]


@given(numbers, numbers)
def test_division_matches_kernel(a, b):
    expected = kernel_divide(a, b)
    actual = dsms_divide(a, b)
    assert actual is not None
    assert isinstance(actual, float)
    if math.isnan(expected):
        assert math.isnan(actual)
    else:
        assert actual == expected


@given(numbers)
def test_zero_divisor_is_inband_nan(a):
    for zero in (0, 0.0, -0.0):
        assert math.isnan(dsms_divide(a, zero))
        assert math.isnan(kernel_divide(a, zero))


def test_quotient_is_always_float():
    assert dsms_divide(7, 2) == 3.5
    assert isinstance(dsms_divide(8, 2), float)
    assert kernel_divide(7, 2) == 3.5

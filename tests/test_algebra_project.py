"""Unit tests for projection / reconstruction operators."""

import numpy as np
import pytest

from repro.errors import AlignmentError
from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT
from repro.kernel.algebra.project import head_oids, materialize, projection
from repro.kernel.algebra.select import thetaselect

from conftest import int_bat, str_bat


class TestProjection:
    def test_fetch_by_candidates(self):
        values = int_bat([10, 20, 30, 40])
        cand = BAT.from_values([0, 2], Atom.OID)
        assert projection(cand, values).to_list() == [10, 30]

    def test_result_aligned_with_candidates(self):
        values = int_bat([10, 20, 30])
        cand = BAT.from_values([1, 2], Atom.OID, hseq=5)
        out = projection(cand, values)
        assert out.hseq == 5
        assert out.to_list() == [20, 30]

    def test_respects_value_hseq(self):
        values = int_bat([10, 20, 30], hseq=100)
        cand = BAT.from_values([101], Atom.OID)
        assert projection(cand, values).to_list() == [20]

    def test_out_of_range_raises(self):
        values = int_bat([10])
        cand = BAT.from_values([5], Atom.OID)
        with pytest.raises(AlignmentError):
            projection(cand, values)

    def test_late_reconstruction_pattern(self):
        """Select on one column, fetch another — the column-store idiom."""
        x1 = int_bat([5, 1, 8, 3])
        x2 = str_bat(["a", "b", "c", "d"])
        cand = thetaselect(x1, 4, ">")
        assert projection(cand, x2).to_list() == ["a", "c"]


class TestMaterialize:
    def test_copies_storage(self):
        base = np.arange(5, dtype=np.int64)
        view = BAT(base[1:4], Atom.INT, hseq=1)
        owned = materialize(view)
        base[2] = 99
        assert view.to_list() == [1, 99, 3]
        assert owned.to_list() == [1, 2, 3]


class TestHeadOids:
    def test_mirror_aligned(self):
        b = int_bat([7, 8, 9], hseq=4)
        mirror = head_oids(b)
        assert mirror.to_list() == [4, 5, 6]
        assert mirror.hseq == 4

    def test_roundtrip_through_projection(self):
        b = int_bat([7, 8, 9], hseq=4)
        mirror = head_oids(b)
        cand = thetaselect(b, 7, ">")
        assert projection(cand, mirror).to_list() == cand.to_list()

"""Unit tests for plan-shape analysis (rewriter front half)."""

import pytest

from repro.errors import UnsupportedQueryError
from repro.core.rewriter import analyze
from repro.sql.optimizer import optimize
from repro.sql.planner import plan_query


def shape_of(catalog, sql):
    return analyze(optimize(plan_query(sql, catalog)))


class TestSingleStreamShapes:
    def test_select_only(self, catalog):
        shape = shape_of(catalog, "SELECT x1 FROM s [RANGE 100 SLIDE 10] WHERE x1 > 2")
        assert not shape.is_join
        assert shape.aggregate is None
        assert shape.streams[0].alias == "s"
        assert shape.streams[0].predicate is not None
        assert shape.streams[0].window.basic_windows == 10

    def test_grouped_aggregate(self, catalog):
        shape = shape_of(
            catalog,
            "SELECT x1, sum(x2) FROM s [RANGE 100 SLIDE 10] GROUP BY x1",
        )
        assert shape.aggregate is not None
        assert shape.aggregate.keys

    def test_having_captured(self, catalog):
        shape = shape_of(
            catalog,
            "SELECT x1 FROM s [RANGE 100 SLIDE 10] GROUP BY x1 HAVING count(*) > 1",
        )
        assert shape.having is not None

    def test_top_operators(self, catalog):
        shape = shape_of(
            catalog,
            "SELECT DISTINCT x1 FROM s [RANGE 100 SLIDE 10] ORDER BY x1 LIMIT 5",
        )
        assert shape.distinct
        assert shape.order is not None
        assert shape.limit is not None

    def test_landmark(self, catalog):
        shape = shape_of(catalog, "SELECT sum(x1) FROM s [LANDMARK SLIDE 10]")
        assert shape.streams[0].window.is_landmark

    def test_missing_window_rejected(self, catalog):
        with pytest.raises(UnsupportedQueryError):
            shape_of(catalog, "SELECT x1 FROM s")

    def test_table_only_rejected(self, catalog):
        with pytest.raises(UnsupportedQueryError):
            shape_of(catalog, "SELECT x2 FROM ref")


class TestJoinShapes:
    def test_two_streams(self, catalog):
        shape = shape_of(
            catalog,
            "SELECT max(s1.x1) FROM s s1 [RANGE 40 SLIDE 10], s2 [RANGE 40 SLIDE 10] "
            "WHERE s1.x2 = s2.x2",
        )
        assert shape.is_join
        assert len(shape.streams) == 2
        assert shape.table is None

    def test_residual_predicate(self, catalog):
        shape = shape_of(
            catalog,
            "SELECT count(*) FROM s s1 [RANGE 40 SLIDE 10], s2 [RANGE 40 SLIDE 10] "
            "WHERE s1.x2 = s2.x2 AND s1.x1 > s2.x1",
        )
        assert shape.residual is not None

    def test_hybrid_stream_table(self, catalog):
        shape = shape_of(
            catalog,
            "SELECT count(*) FROM s s1 [RANGE 40 SLIDE 10], ref "
            "WHERE s1.x2 = ref.x2",
        )
        assert shape.is_join
        assert shape.table is not None
        assert shape.table.alias == "ref"
        assert len(shape.streams) == 1

    def test_single_relation_residual_merges_into_filter(self, catalog):
        shape = shape_of(
            catalog,
            "SELECT x1 FROM s [RANGE 100 SLIDE 10] WHERE x1 > 2 AND x2 < 5",
        )
        assert shape.residual is None
        assert shape.streams[0].predicate is not None

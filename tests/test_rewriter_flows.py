"""Unit tests for the flow classification (operator taxonomy)."""

import pytest

from repro.core.rewriter.flows import (
    Flow,
    GLOBAL_COMBINE,
    GROUPED_COMBINE,
    plan_aggregate_flows,
)
from repro.sql.logical import AggSpec
from repro.sql.ast import ColumnRef


def spec(func, out="agg_0"):
    arg = None if func == "count" else ColumnRef(None, "x2")
    return AggSpec(func, arg, out)


class TestDirectAggregates:
    @pytest.mark.parametrize("func", ["sum", "count", "min", "max"])
    def test_grouped_single_flow(self, func):
        flows, entries = plan_aggregate_flows([spec(func)], grouped=True)
        assert flows == [Flow("agg_0", f"g{func}")]
        assert entries[0].finalize == ("flow", "agg_0")

    @pytest.mark.parametrize("func", ["sum", "count", "min", "max"])
    def test_global_single_flow(self, func):
        flows, entries = plan_aggregate_flows([spec(func)], grouped=False)
        assert flows == [Flow("agg_0", func)]


class TestAvgExpansion:
    def test_grouped_avg_expands(self):
        flows, entries = plan_aggregate_flows([spec("avg")], grouped=True)
        assert flows == [Flow("agg_0__sum", "gsum"), Flow("agg_0__cnt", "gcount")]
        assert entries[0].finalize == ("div", "agg_0__sum", "agg_0__cnt")

    def test_global_avg_expands(self):
        flows, __ = plan_aggregate_flows([spec("avg")], grouped=False)
        assert [f.kind for f in flows] == ["sum", "count"]

    def test_mixed(self):
        flows, entries = plan_aggregate_flows(
            [spec("max", "agg_0"), spec("avg", "agg_1")], grouped=False
        )
        assert [f.name for f in flows] == ["agg_0", "agg_1__sum", "agg_1__cnt"]
        assert entries[0].finalize == ("flow", "agg_0")


class TestCombineTables:
    def test_count_combines_by_sum(self):
        """The paper's compensation rule: count is compensated by a sum."""
        assert GROUPED_COMBINE["gcount"] == "aggr.subsum"
        assert GLOBAL_COMBINE["count"] == "aggr.sum"

    def test_min_max_combine_with_themselves(self):
        assert GROUPED_COMBINE["gmin"] == "aggr.submin"
        assert GROUPED_COMBINE["gmax"] == "aggr.submax"
        assert GLOBAL_COMBINE["min"] == "aggr.min"
        assert GLOBAL_COMBINE["max"] == "aggr.max"

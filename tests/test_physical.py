"""Unit tests for the physical compiler: compile plans, run, compare."""

import numpy as np
import pytest

from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT
from repro.kernel.execution import Interpreter
from repro.sql.optimizer import optimize
from repro.sql.physical import compile_full, scan_slot
from repro.sql.planner import plan_query

from conftest import assert_rows_equal


def run_query(catalog, sql, inputs):
    """Compile + execute ``sql`` over named input columns."""
    planned = optimize(plan_query(sql, catalog))
    compiled = compile_full(planned)
    bats = {}
    for alias, columns in compiled.scan_inputs.items():
        for column, slot in columns.items():
            bats[slot] = BAT.from_array(np.asarray(inputs[alias][column]))
    outputs = Interpreter().run(compiled.program, bats)
    cols = [outputs[slot].to_list() for slot in compiled.output_slots]
    return compiled.output_names, list(zip(*cols)) if cols else []


@pytest.fixture
def data():
    return {
        "s": {
            "x1": np.array([5, 1, 8, 5, 3, 9], dtype=np.int64),
            "x2": np.array([10, 20, 30, 40, 50, 60], dtype=np.int64),
        },
        "s1": {
            "x1": np.array([5, 1, 8], dtype=np.int64),
            "x2": np.array([2, 3, 4], dtype=np.int64),
        },
        "s2": {
            "x1": np.array([7, 6], dtype=np.int64),
            "x2": np.array([4, 2], dtype=np.int64),
        },
    }


class TestSelectProject:
    def test_filter_and_project(self, catalog, data):
        names, rows = run_query(
            catalog, "SELECT x1, x2 FROM s WHERE x1 > 4", data
        )
        assert names == ["x1", "x2"]
        assert rows == [(5, 10), (8, 30), (5, 40), (9, 60)]

    def test_computed_projection(self, catalog, data):
        __, rows = run_query(catalog, "SELECT x1 * 2 + 1 FROM s WHERE x1 < 4", data)
        assert rows == [(3,), (7,)]

    def test_constant_projection(self, catalog, data):
        __, rows = run_query(catalog, "SELECT 7 FROM s WHERE x1 > 8", data)
        assert rows == [(7,)]

    def test_conjunctive_filter(self, catalog, data):
        __, rows = run_query(
            catalog, "SELECT x2 FROM s WHERE x1 > 2 AND x1 < 6 AND x2 > 15", data
        )
        assert rows == [(40,), (50,)]

    def test_or_predicate(self, catalog, data):
        __, rows = run_query(
            catalog, "SELECT x1 FROM s WHERE x1 = 1 OR x1 = 9", data
        )
        assert rows == [(1,), (9,)]

    def test_expression_predicate(self, catalog, data):
        __, rows = run_query(catalog, "SELECT x1 FROM s WHERE x1 + x2 > 48", data)
        assert rows == [(3,), (9,)]


class TestAggregates:
    def test_grouped(self, catalog, data):
        __, rows = run_query(
            catalog,
            "SELECT x1, sum(x2), count(*) FROM s GROUP BY x1 ORDER BY x1",
            data,
        )
        assert rows == [(1, 20, 1), (3, 50, 1), (5, 50, 2), (8, 30, 1), (9, 60, 1)]

    def test_grouped_avg_min_max(self, catalog, data):
        __, rows = run_query(
            catalog,
            "SELECT x1, avg(x2), min(x2), max(x2) FROM s GROUP BY x1 ORDER BY x1",
            data,
        )
        assert_rows_equal(
            rows,
            [
                (1, 20.0, 20, 20),
                (3, 50.0, 50, 50),
                (5, 25.0, 10, 40),
                (8, 30.0, 30, 30),
                (9, 60.0, 60, 60),
            ],
        )

    def test_global(self, catalog, data):
        __, rows = run_query(
            catalog, "SELECT min(x1), max(x1), sum(x2), avg(x2), count(*) FROM s", data
        )
        assert_rows_equal(rows, [(1, 9, 210, 35.0, 6)])

    def test_global_empty_selection(self, catalog, data):
        __, rows = run_query(
            catalog, "SELECT max(x1), sum(x2) FROM s WHERE x1 > 100", data
        )
        assert rows == []

    def test_count_only_empty_is_zero(self, catalog, data):
        __, rows = run_query(catalog, "SELECT count(*) FROM s WHERE x1 > 100", data)
        assert rows == [(0,)]

    def test_having(self, catalog, data):
        __, rows = run_query(
            catalog,
            "SELECT x1, count(*) FROM s GROUP BY x1 HAVING count(*) > 1",
            data,
        )
        assert rows == [(5, 2)]

    def test_expression_over_aggregates(self, catalog, data):
        __, rows = run_query(
            catalog, "SELECT sum(x2) / count(*) FROM s WHERE x1 = 5", data
        )
        assert_rows_equal(rows, [(25.0,)])

    def test_group_by_expression(self, catalog, data):
        __, rows = run_query(
            catalog,
            "SELECT x1 % 2, count(*) FROM s GROUP BY x1 % 2 ORDER BY x1 % 2",
            data,
        )
        assert rows == [(0, 1), (1, 5)]


class TestJoin:
    def test_join_aggregate(self, catalog, data):
        __, rows = run_query(
            catalog,
            "SELECT max(s1.x1), avg(s2.x1) FROM s s1, s2 WHERE s1.x2 = s2.x2",
            {"s1": data["s1"], "s2": data["s2"]},
        )
        # matches: s1 rows with x2 in {4,2}: (5,2)-(6), (8,4)-(7)
        assert_rows_equal(rows, [(8, 6.5)])

    def test_join_select_only(self, catalog, data):
        __, rows = run_query(
            catalog,
            "SELECT s1.x1, s2.x1 FROM s s1, s2 WHERE s1.x2 = s2.x2 ORDER BY s1.x1",
            {"s1": data["s1"], "s2": data["s2"]},
        )
        assert rows == [(5, 6), (8, 7)]

    def test_join_with_residual(self, catalog, data):
        __, rows = run_query(
            catalog,
            "SELECT count(*) FROM s s1, s2 WHERE s1.x2 = s2.x2 AND s1.x1 > s2.x1",
            {"s1": data["s1"], "s2": data["s2"]},
        )
        assert rows == [(1,)]


class TestTopOperators:
    def test_distinct(self, catalog, data):
        __, rows = run_query(catalog, "SELECT DISTINCT x1 FROM s", data)
        assert rows == [(1,), (3,), (5,), (8,), (9,)]

    def test_order_desc_limit(self, catalog, data):
        __, rows = run_query(
            catalog, "SELECT x1 FROM s ORDER BY x1 DESC LIMIT 3", data
        )
        assert rows == [(9,), (8,), (5,)]

    def test_multi_key_order(self, catalog, data):
        __, rows = run_query(
            catalog, "SELECT x1, x2 FROM s ORDER BY x1, x2 DESC", data
        )
        assert rows == [(1, 20), (3, 50), (5, 40), (5, 10), (8, 30), (9, 60)]

    def test_program_validates(self, catalog, data):
        planned = optimize(plan_query("SELECT x1, sum(x2) FROM s GROUP BY x1", catalog))
        compiled = compile_full(planned)
        compiled.program.validate()  # no raise
        assert scan_slot("s", "x1") in compiled.program.inputs

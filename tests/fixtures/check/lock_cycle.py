"""Injected-bug fixture: a static lock-acquisition cycle.

``one_then_two`` acquires ``Basket._lock`` and then ``Scheduler._lock``
— against the declared engine order — while ``two_then_one`` nests the
same pair the other way, so the extracted graph both violates the rank
order and contains a cycle.  ``repro check`` must report
``lock-order-violation`` and ``lock-cycle``.
"""

import threading


class Basket:
    def __init__(self) -> None:
        self._lock = threading.Lock()


class Scheduler:
    def __init__(self) -> None:
        self._lock = threading.Lock()


def one_then_two(basket: Basket, scheduler: Scheduler) -> None:
    with basket._lock:
        with scheduler._lock:
            pass


def two_then_one(basket: Basket, scheduler: Scheduler) -> None:
    with scheduler._lock:
        with basket._lock:
            pass

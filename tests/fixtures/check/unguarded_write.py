"""Injected-bug fixture: a guarded attribute written outside its lock.

``repro check`` must flag the write in ``sloppy_increment`` (and the
read in ``sloppy_read``) as ``unguarded-write`` / ``unguarded-read``.
Not imported by anything; exists only for the acceptance tests.
"""

import threading


class Tally:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock

    def increment(self) -> None:
        with self._lock:
            self.count += 1

    def sloppy_increment(self) -> None:
        self.count += 1  # BUG: no lock held

    def sloppy_read(self) -> int:
        return self.count  # BUG: no lock held

"""Injected-bug fixture: a landmark query whose state grows forever.

A select-only landmark window retains every basic window's rows (the
combine program concatenates, it cannot compact), so ``repro lint
--resources`` must report an unbounded state bound with the
``unbounded-landmark`` diagnostic.  Not executed; harvested statically.
"""

from repro.core.engine import DataCellEngine

engine = DataCellEngine()
engine.create_stream("clicks", [("user", "int"), ("page", "int")])
engine.submit("SELECT user, page FROM clicks [LANDMARK SLIDE 64] WHERE page > 10")

"""Unit and property tests for SystemX's retractable accumulators."""

import pytest
from hypothesis import given, strategies as st

from repro.dsms.accumulators import (
    AvgAccumulator,
    CountAccumulator,
    GroupedAccumulators,
    MaxAccumulator,
    MinAccumulator,
    SumAccumulator,
    make_accumulator,
)


class TestScalarAccumulators:
    def test_sum(self):
        acc = SumAccumulator()
        acc.add(3)
        acc.add(4)
        acc.retract(3)
        assert acc.value() == 4
        acc.retract(4)
        assert acc.is_empty()
        assert acc.value() is None

    def test_count(self):
        acc = CountAccumulator()
        acc.add()
        acc.add()
        acc.retract()
        assert acc.value() == 1

    def test_avg(self):
        acc = AvgAccumulator()
        acc.add(1)
        acc.add(3)
        assert acc.value() == pytest.approx(2.0)
        acc.retract(1)
        assert acc.value() == pytest.approx(3.0)
        acc.retract(3)
        assert acc.value() is None

    def test_max_with_retraction(self):
        acc = MaxAccumulator()
        for v in (5, 9, 7):
            acc.add(v)
        assert acc.value() == 9
        acc.retract(9)
        assert acc.value() == 7
        acc.retract(7)
        acc.retract(5)
        assert acc.value() is None

    def test_max_duplicate_values(self):
        acc = MaxAccumulator()
        acc.add(5)
        acc.add(5)
        acc.retract(5)
        assert acc.value() == 5

    def test_min(self):
        acc = MinAccumulator()
        for v in (5, 2, 8):
            acc.add(v)
        assert acc.value() == 2
        acc.retract(2)
        assert acc.value() == 5

    def test_factory(self):
        assert isinstance(make_accumulator("sum"), SumAccumulator)
        assert isinstance(make_accumulator("max"), MaxAccumulator)

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=60))
    def test_max_sliding_window_matches_python(self, values):
        """FIFO window of size 5 over a stream: lazy-heap max == real max."""
        acc = MaxAccumulator()
        window: list[int] = []
        for value in values:
            acc.add(value)
            window.append(value)
            if len(window) > 5:
                acc.retract(window.pop(0))
            assert acc.value() == max(window)


class TestGroupedAccumulators:
    def test_groups_appear_and_vanish(self):
        bank = GroupedAccumulators(["sum", "count"])
        bank.add(("a",), [10, 1])
        bank.add(("a",), [20, 1])
        bank.add(("b",), [5, 1])
        assert len(bank) == 2
        snapshot = dict((k, v) for k, v in bank.snapshot())
        assert snapshot[("a",)] == [30, 2]
        bank.retract(("b",), [5, 1])
        assert len(bank) == 1

    def test_snapshot_sorted_by_key(self):
        bank = GroupedAccumulators(["count"])
        bank.add((3,), [1])
        bank.add((1,), [1])
        bank.add((2,), [1])
        assert [k for k, __ in bank.snapshot()] == [(1,), (2,), (3,)]

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(-50, 50)),
            min_size=1,
            max_size=80,
        )
    )
    def test_windowed_group_sums_match_python(self, rows):
        bank = GroupedAccumulators(["sum"])
        window: list = []
        for key, value in rows:
            bank.add((key,), [value])
            window.append((key, value))
            if len(window) > 7:
                old_key, old_value = window.pop(0)
                bank.retract((old_key,), [old_value])
            expected: dict = {}
            for k, v in window:
                expected[k] = expected.get(k, 0) + v
            got = {k[0]: vals[0] for k, vals in bank.snapshot()}
            assert got == expected

"""Unit tests for baskets (stream buffers)."""

import threading

import numpy as np
import pytest

from repro.errors import BasketError
from repro.core.basket import Basket
from repro.core.windows import TS_COLUMN
from repro.kernel.atoms import Atom
from repro.kernel.storage import Schema


@pytest.fixture
def basket():
    return Basket("b", Schema.of(("x1", Atom.INT), ("x2", Atom.FLT)))


class TestAppend:
    def test_append_rows(self, basket):
        assert basket.append_rows([(1, 1.5), (2, 2.5)]) == 2
        assert basket.count == 2
        assert basket.column("x1").to_list() == [1, 2]

    def test_append_rows_bad_arity(self, basket):
        with pytest.raises(BasketError):
            basket.append_rows([(1,)])

    def test_append_columns(self, basket):
        basket.append_columns({"x1": [1, 2, 3], "x2": [0.1, 0.2, 0.3]})
        assert basket.count == 3

    def test_append_columns_validation(self, basket):
        with pytest.raises(BasketError):
            basket.append_columns({"x1": [1]})
        with pytest.raises(BasketError):
            basket.append_columns({"x1": [1], "x2": [1.0, 2.0]})

    def test_appended_total_monotonic(self, basket):
        basket.append_rows([(1, 1.0)])
        basket.delete_head(1)
        basket.append_rows([(2, 2.0)])
        assert basket.appended_total == 2
        assert basket.count == 1


class TestTimestamps:
    def test_logical_clock_default(self, basket):
        basket.append_rows([(1, 1.0), (2, 2.0)])
        basket.append_columns({"x1": [3], "x2": [3.0]})
        assert basket.timestamps().to_list() == [0, 1, 2]

    def test_explicit_timestamps(self, basket):
        basket.append_columns(
            {"x1": [1, 2], "x2": [0.0, 0.0]}, timestamps=[100, 200]
        )
        assert basket.timestamps().to_list() == [100, 200]
        assert basket.max_timestamp() == 200

    def test_timestamp_length_mismatch(self, basket):
        with pytest.raises(BasketError):
            basket.append_columns({"x1": [1], "x2": [0.0]}, timestamps=[1, 2])

    def test_count_before(self, basket):
        basket.append_columns(
            {"x1": [1, 2, 3], "x2": [0.0] * 3}, timestamps=[10, 20, 30]
        )
        assert basket.count_before(25) == 2
        assert basket.count_before(5) == 0
        assert basket.count_before(31) == 3

    def test_no_timestamp_basket(self):
        bare = Basket("raw", Schema.of(("x", Atom.INT)), with_timestamps=False)
        bare.append_rows([(1,)])
        with pytest.raises(BasketError):
            bare.timestamps()

    def test_max_timestamp_empty(self, basket):
        assert basket.max_timestamp() is None


class TestSlicesAndExpiry:
    def test_head_slice(self, basket):
        basket.append_columns({"x1": [1, 2, 3], "x2": [1.0, 2.0, 3.0]})
        cols = basket.head_slice(2, ["x1"])
        assert cols["x1"].to_list() == [1, 2]

    def test_head_slice_too_many(self, basket):
        basket.append_rows([(1, 1.0)])
        with pytest.raises(BasketError):
            basket.head_slice(5, ["x1"])

    def test_unknown_column(self, basket):
        with pytest.raises(BasketError):
            basket.column("ghost")

    def test_delete_head_advances_hseq(self, basket):
        basket.append_columns({"x1": [1, 2, 3], "x2": [0.0] * 3})
        basket.delete_head(2)
        assert basket.count == 1
        assert basket.hseq == 2
        assert basket.column("x1").to_list() == [3]
        assert basket.column(TS_COLUMN).to_list() == [2]

    def test_concurrent_appends(self, basket):
        def writer(start):
            for i in range(100):
                basket.append_rows([(start + i, float(i))])

        threads = [threading.Thread(target=writer, args=(k * 1000,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert basket.count == 400
        assert basket.appended_total == 400

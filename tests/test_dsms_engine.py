"""Tests for the SystemX tuple-at-a-time engine (vs DataCell results)."""

import numpy as np
import pytest

from repro import DataCellEngine
from repro.dsms import SystemX
from repro.errors import DsmsError
from repro.kernel.atoms import Atom
from repro.kernel.storage import Schema

from conftest import assert_rows_equal


@pytest.fixture
def systemx():
    sx = SystemX()
    sx.create_stream("s", Schema.of(("x1", Atom.INT), ("x2", Atom.INT)))
    sx.create_stream("s2", Schema.of(("x1", Atom.INT), ("x2", Atom.INT)))
    return sx


@pytest.fixture
def datacell():
    e = DataCellEngine()
    e.create_stream("s", [("x1", "int"), ("x2", "int")])
    e.create_stream("s2", [("x1", "int"), ("x2", "int")])
    return e


def random_columns(count, seed, domain=10):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, 10, count).astype(np.int64),
        rng.integers(0, domain, count).astype(np.int64),
    )


def compare(datacell, systemx, sql, feeds, float_tol=1e-9):
    """Run the same query + data through both engines and diff windows."""
    dq = datacell.submit(sql)
    xq = systemx.submit(sql)
    for stream, (c1, c2) in feeds:
        datacell.feed(stream, columns={"x1": c1, "x2": c2})
    datacell.run_until_idle()
    for stream, (c1, c2) in feeds:
        systemx.push_many(stream, zip(c1.tolist(), c2.tolist()))
    dc_rows = dq.result_rows()
    assert len(dc_rows) == len(xq.results)
    for a, b in zip(dc_rows, xq.results):
        assert_rows_equal([tuple(r) for r in a], [tuple(r) for r in b], float_tol)
    return len(dc_rows)


class TestSingleStream:
    def test_grouped_aggregate(self, datacell, systemx):
        sql = (
            "SELECT x1, sum(x2), count(*) FROM s [RANGE 50 SLIDE 10] "
            "WHERE x1 > 3 GROUP BY x1 ORDER BY x1"
        )
        windows = compare(
            datacell, systemx, sql, [("s", random_columns(150, 31))]
        )
        assert windows == 11

    def test_min_max_with_expiry(self, datacell, systemx):
        sql = "SELECT min(x2), max(x2) FROM s [RANGE 30 SLIDE 10]"
        compare(datacell, systemx, sql, [("s", random_columns(120, 32, domain=1000))])

    def test_avg(self, datacell, systemx):
        sql = "SELECT avg(x2) FROM s [RANGE 40 SLIDE 20] WHERE x1 > 5"
        compare(datacell, systemx, sql, [("s", random_columns(200, 33))])

    def test_select_only(self, datacell, systemx):
        sql = "SELECT x1, x2 FROM s [RANGE 20 SLIDE 5] WHERE x1 > 7"
        compare(datacell, systemx, sql, [("s", random_columns(60, 34))])

    def test_having_order_limit(self, datacell, systemx):
        sql = (
            "SELECT x1, count(*) FROM s [RANGE 60 SLIDE 30] GROUP BY x1 "
            "HAVING count(*) > 2 ORDER BY x1 DESC LIMIT 3"
        )
        compare(datacell, systemx, sql, [("s", random_columns(240, 35))])

    def test_landmark(self, datacell, systemx):
        sql = "SELECT sum(x2) FROM s [LANDMARK SLIDE 25]"
        compare(datacell, systemx, sql, [("s", random_columns(100, 36))])


class TestJoins:
    def test_join_aggregates(self, datacell, systemx):
        sql = (
            "SELECT max(s1.x1), avg(s2.x1) FROM s s1 [RANGE 40 SLIDE 10], "
            "s2 [RANGE 40 SLIDE 10] WHERE s1.x2 = s2.x2 AND s1.x1 > 2"
        )
        windows = compare(
            datacell,
            systemx,
            sql,
            [("s", random_columns(140, 37, 15)), ("s2", random_columns(140, 38, 15))],
        )
        assert windows == 11

    def test_join_grouped(self, datacell, systemx):
        sql = (
            "SELECT s1.x1, count(*) FROM s s1 [RANGE 30 SLIDE 15], "
            "s2 [RANGE 30 SLIDE 15] WHERE s1.x2 = s2.x2 GROUP BY s1.x1 ORDER BY s1.x1"
        )
        compare(
            datacell,
            systemx,
            sql,
            [("s", random_columns(90, 39, 6)), ("s2", random_columns(90, 40, 6))],
        )

    def test_interleaving_does_not_matter(self, systemx):
        """Pushing all of one stream first must equal strict interleaving."""
        sql = (
            "SELECT count(*) FROM s s1 [RANGE 20 SLIDE 10], "
            "s2 [RANGE 20 SLIDE 10] WHERE s1.x2 = s2.x2"
        )
        a1, a2 = random_columns(60, 41, 8)
        b1, b2 = random_columns(60, 42, 8)
        q_bulk = systemx.submit(sql)
        systemx.push_many("s", zip(a1.tolist(), a2.tolist()))
        systemx.push_many("s2", zip(b1.tolist(), b2.tolist()))

        other = SystemX()
        other.create_stream("s", Schema.of(("x1", Atom.INT), ("x2", Atom.INT)))
        other.create_stream("s2", Schema.of(("x1", Atom.INT), ("x2", Atom.INT)))
        q_inter = other.submit(sql)
        for la, lb, ra, rb in zip(a1, a2, b1, b2):
            other.push("s", (int(la), int(lb)))
            other.push("s2", (int(ra), int(rb)))
        assert q_bulk.results == q_inter.results


class TestLimitsAndErrors:
    def test_time_based_rejected(self, systemx):
        with pytest.raises(DsmsError):
            systemx.submit("SELECT count(*) FROM s [RANGE 10 SECONDS SLIDE 5 SECONDS]")

    def test_tuples_processed_counter(self, systemx):
        query = systemx.submit("SELECT count(*) FROM s [RANGE 10 SLIDE 5]")
        systemx.push_many("s", [(i, i) for i in range(30)])
        assert query.tuples_processed == 30

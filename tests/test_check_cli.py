"""``repro check``: CLI exit codes, output formats, injected-bug fixtures."""

import io
import json
from pathlib import Path

from repro.analysis.checker import default_check_path, run_check_cli

REPO = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "check"


def run(argv):
    out = io.StringIO()
    code = run_check_cli(argv, out=out)
    return code, out.getvalue()


def test_default_path_is_the_installed_package():
    assert default_check_path().endswith("repro")


def test_clean_on_engine_sources():
    code, output = run([])
    assert code == 0, output
    assert "0 errors" in output
    assert "lock-order edge" in output


def test_missing_path_exits_2():
    code, output = run(["/no/such/path.py"])
    assert code == 2
    assert "does not exist" in output


def test_unguarded_write_fixture_is_caught():
    fixture = str(FIXTURES / "unguarded_write.py")
    code, output = run([fixture])
    assert code == 1
    assert "unguarded-write" in output
    assert "unguarded-read" in output
    # Actionable: names the attribute, the missing lock, and the line.
    assert "count" in output
    assert "_lock" in output
    assert "unguarded_write.py:" in output


def test_lock_cycle_fixture_is_caught():
    fixture = str(FIXTURES / "lock_cycle.py")
    code, output = run([fixture])
    assert code == 1
    assert "lock-order-violation" in output
    assert "lock-cycle" in output
    assert "Scheduler._lock" in output and "Basket._lock" in output


def test_json_format_structure():
    fixture = str(FIXTURES / "unguarded_write.py")
    out = io.StringIO()
    code = run_check_cli([fixture, "--format", "json"], out=out)
    assert code == 1
    data = json.loads(out.getvalue())
    assert data["files"] == [fixture]
    assert data["lock_order"]  # the declared engine order ships with it
    assert data["report"]["ok"] is False
    findings = {d["code"] for d in data["report"]["diagnostics"]}
    assert {"unguarded-write", "unguarded-read"} <= findings
    anchored = data["report"]["diagnostics"][0]
    assert anchored["file"] == fixture
    assert isinstance(anchored["line"], int)


def test_quiet_hides_warnings_keeps_errors():
    fixture = str(FIXTURES / "unguarded_write.py")
    code, output = run([fixture, "--quiet"])
    assert code == 1
    assert "error:" in output
    assert "warning:" not in output


def test_cli_dispatch_via_main():
    from repro.cli import main

    assert main(["check", str(FIXTURES / "unguarded_write.py"), "--quiet"]) == 1

"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import LexerError
from repro.sql.lexer import Token, tokenize


def kinds(sql):
    return [(t.kind, t.text) for t in tokenize(sql)[:-1]]  # drop eof


class TestTokenize:
    def test_keywords_case_insensitive(self):
        assert kinds("SELECT select SeLeCt") == [("keyword", "select")] * 3

    def test_identifiers(self):
        assert kinds("foo _bar x1") == [
            ("ident", "foo"),
            ("ident", "_bar"),
            ("ident", "x1"),
        ]

    def test_integers_and_floats(self):
        assert kinds("1 23 4.5 1e3 2.5e-2") == [
            ("number", "1"),
            ("number", "23"),
            ("number", "4.5"),
            ("number", "1e3"),
            ("number", "2.5e-2"),
        ]

    def test_qualified_name_not_a_float(self):
        # "s1.x1" must lex as ident dot ident, not a number.
        assert kinds("s1.x1") == [
            ("ident", "s1"),
            ("punct", "."),
            ("ident", "x1"),
        ]

    def test_strings(self):
        assert kinds("'hello' 'it''s'") == [
            ("string", "hello"),
            ("string", "it's"),
        ]

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_operators_maximal_munch(self):
        assert kinds("<= >= <> != = < >") == [
            ("op", "<="),
            ("op", ">="),
            ("op", "<>"),
            ("op", "!="),
            ("op", "="),
            ("op", "<"),
            ("op", ">"),
        ]

    def test_punctuation(self):
        assert kinds("( ) , [ ] ;") == [
            ("punct", "("),
            ("punct", ")"),
            ("punct", ","),
            ("punct", "["),
            ("punct", "]"),
            ("punct", ";"),
        ]

    def test_comments_skipped(self):
        assert kinds("select -- comment here\n x") == [
            ("keyword", "select"),
            ("ident", "x"),
        ]

    def test_minus_is_operator(self):
        assert kinds("a - 1") == [("ident", "a"), ("op", "-"), ("number", "1")]

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("select @")

    def test_eof_token(self):
        tokens = tokenize("x")
        assert tokens[-1].kind == "eof"

    def test_positions(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3

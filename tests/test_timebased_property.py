"""Property-based equivalence for time-based windows.

Random bursty arrival processes (including long silences → empty basic
windows) through the incremental and re-evaluation paths plus a Python
reference computed from the timestamps directly.
"""

import collections

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import DataCellEngine

US = 1_000_000

common = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_engine():
    engine = DataCellEngine()
    engine.create_stream("s", [("x1", "int"), ("x2", "int")])
    return engine


arrival_process = st.lists(
    st.integers(0, 15 * US),  # inter-arrival gaps up to 15 s (empty slices)
    min_size=5,
    max_size=120,
)


class TestTimeBasedEquivalence:
    @common
    @given(
        arrival_process,
        st.integers(0, 2**31 - 1),
        st.sampled_from([(40, 10), (30, 5), (20, 20)]),
    )
    def test_incremental_vs_reeval_vs_reference(self, gaps, seed, geometry):
        size_s, step_s = geometry
        ts = np.cumsum(np.asarray(gaps, dtype=np.int64))
        count = len(ts)
        rng = np.random.default_rng(seed)
        x1 = rng.integers(0, 10, count).astype(np.int64)
        x2 = rng.integers(0, 20, count).astype(np.int64)

        sql = (
            f"SELECT x1, sum(x2) FROM s [RANGE {size_s} SECONDS "
            f"SLIDE {step_s} SECONDS] WHERE x1 > 4 GROUP BY x1 ORDER BY x1"
        )
        engine = build_engine()
        qi = engine.submit(sql, mode="incremental")
        qr = engine.submit(sql, mode="reeval")
        engine.feed("s", columns={"x1": x1, "x2": x2}, timestamps=ts)
        engine.run_until_idle()

        incr = qi.result_rows()
        reev = qr.result_rows()
        assert incr == reev

        # reference: window k covers [t0 + k*step, t0 + k*step + size)
        t0 = int(ts[0])
        size_us, step_us = size_s * US, step_s * US
        watermark = int(ts[-1])
        expected_windows = []
        k = 0
        while t0 + k * step_us + size_us <= watermark:
            lo = t0 + k * step_us
            hi = lo + size_us
            sums: dict[int, int] = collections.defaultdict(int)
            for a, b, t in zip(x1, x2, ts):
                if lo <= t < hi and a > 4:
                    sums[int(a)] += int(b)
            expected_windows.append(sorted(sums.items()))
            k += 1
        assert incr == expected_windows

    @common
    @given(arrival_process, st.integers(0, 2**31 - 1))
    def test_landmark_time_based(self, gaps, seed):
        ts = np.cumsum(np.asarray(gaps, dtype=np.int64))
        count = len(ts)
        rng = np.random.default_rng(seed)
        x1 = rng.integers(0, 10, count).astype(np.int64)
        x2 = rng.integers(0, 20, count).astype(np.int64)
        sql = "SELECT count(*), sum(x2) FROM s [LANDMARK SLIDE 10 SECONDS]"
        engine = build_engine()
        qi = engine.submit(sql, mode="incremental")
        qr = engine.submit(sql, mode="reeval")
        engine.feed("s", columns={"x1": x1, "x2": x2}, timestamps=ts)
        engine.run_until_idle()
        assert qi.result_rows() == qr.result_rows()

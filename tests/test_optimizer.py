"""Unit tests for the rule-based optimizer."""

import pytest

from repro.sql.ast import BinOp, ColumnRef, Literal
from repro.sql.logical import LFilter, LProject, LScan, find_scans
from repro.sql.optimizer import optimize
from repro.sql.optimizer.rules import fold_constants, fuse_filters
from repro.sql.parser import parse_expression
from repro.sql.planner import plan_query


class TestConstantFolding:
    def test_arithmetic(self):
        assert fold_constants(parse_expression("2 * 10 + 1")) == Literal(21)

    def test_comparison(self):
        assert fold_constants(parse_expression("2 < 3")) == Literal(True)

    def test_boolean(self):
        assert fold_constants(parse_expression("true and false")) == Literal(False)

    def test_unary(self):
        assert fold_constants(parse_expression("-(2 + 3)")) == Literal(-5)
        assert fold_constants(parse_expression("not true")) == Literal(False)

    def test_partial_fold(self):
        folded = fold_constants(parse_expression("x + (2 * 3)"))
        assert folded == BinOp("+", ColumnRef(None, "x"), Literal(6))

    def test_division_by_zero_left_alone(self):
        expr = parse_expression("1 / 0")
        assert fold_constants(expr) == expr

    def test_folds_inside_plans(self, catalog):
        planned = optimize(plan_query("SELECT x1 FROM s WHERE x1 > 2 + 3", catalog))
        filt = planned.plan.child
        assert isinstance(filt, LFilter)
        assert filt.predicate == BinOp(">", ColumnRef(None, "x1"), Literal(5))


class TestFilterFusion:
    def test_stacked_filters_merge(self, catalog):
        planned = plan_query("SELECT x1 FROM s WHERE x1 > 1 AND x1 < 9", catalog)
        # force a stacked shape, then fuse
        inner = planned.plan.child
        assert isinstance(inner, LFilter)
        stacked = LFilter(inner, parse_expression("x1 != 5"))
        fused = fuse_filters(stacked)
        assert isinstance(fused, LFilter)
        assert not isinstance(fused.child, LFilter)


class TestProjectionPruning:
    def test_unused_columns_dropped(self, catalog):
        planned = optimize(plan_query("SELECT x1 FROM s WHERE x1 > 2", catalog))
        scan = find_scans(planned.plan)[0]
        assert scan.needed == ["x1"]
        assert [name for name, __ in scan.output_columns()] == ["x1"]

    def test_all_referenced_columns_kept(self, catalog):
        planned = optimize(
            plan_query("SELECT x1 FROM s WHERE x2 > 2 ORDER BY x1", catalog)
        )
        scan = find_scans(planned.plan)[0]
        assert set(scan.needed) == {"x1", "x2"}

    def test_join_keys_kept(self, catalog):
        planned = optimize(
            plan_query(
                "SELECT max(s1.x1) FROM s s1, s2 WHERE s1.x2 = s2.x2", catalog
            )
        )
        by_alias = {scan.alias: scan for scan in find_scans(planned.plan)}
        assert set(by_alias["s1"].needed) == {"x1", "x2"}
        assert set(by_alias["s2"].needed) == {"x2"}

    def test_count_star_keeps_no_columns(self, catalog):
        planned = optimize(plan_query("SELECT count(*) FROM s", catalog))
        scan = find_scans(planned.plan)[0]
        assert scan.needed == []

"""Internal links in the project docs must resolve (tools/check_docs_links).

Runs the same checker CI's docs job runs, so a broken README/DESIGN/
OPERATIONS link fails the tier-1 suite locally too.
"""

import importlib.util
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs_links", ROOT / "tools" / "check_docs_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs_links", module)
    spec.loader.exec_module(module)
    return module


def test_all_internal_doc_links_resolve():
    checker = _load_checker()
    errors = checker.check_links()
    assert not errors, "\n".join(errors)


def test_checker_flags_broken_links(tmp_path):
    checker = _load_checker()
    (tmp_path / "A.md").write_text(
        "# Title\n[good](B.md)\n[bad](missing.md)\n[anchor](B.md#nope)\n"
    )
    (tmp_path / "B.md").write_text("# Section One\n")
    errors = checker.check_links(tmp_path, ["A.md"])
    assert len(errors) == 2
    assert any("missing.md" in e for e in errors)
    assert any("nope" in e for e in errors)
    assert not checker.check_links(tmp_path, ["B.md"])


def test_discovery_covers_every_docs_file():
    checker = _load_checker()
    discovered = set(checker.discover_docs())
    assert {"docs/OPERATIONS.md", "docs/ARCHITECTURE.md", "docs/METRICS.md"} <= discovered
    assert {"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"} <= discovered
    on_disk = {f"docs/{p.name}" for p in (ROOT / "docs").glob("*.md")}
    assert on_disk <= discovered

"""Unit tests for partial-result stores (the transition machinery)."""

import pytest

from repro.errors import SchedulerError
from repro.core.partials import PairStore, PartialStore
from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT


def bundle(value):
    return {"flow": BAT.from_values([value], Atom.INT)}


class TestPartialStore:
    def test_add_and_live(self):
        store = PartialStore(capacity=3)
        for i in range(3):
            assert store.add(bundle(i)) == i
        assert [seq for seq, __ in store.live()] == [0, 1, 2]

    def test_eviction_is_the_transition(self):
        """Adding past capacity drops the oldest — Algorithm 2 lines 20-21."""
        store = PartialStore(capacity=3)
        for i in range(5):
            store.add(bundle(i))
        live = store.live()
        assert [seq for seq, __ in live] == [2, 3, 4]
        assert [b["flow"].to_list()[0] for __, b in live] == [2, 3, 4]

    def test_unbounded(self):
        store = PartialStore(capacity=0)
        for i in range(10):
            store.add(bundle(i))
        assert len(store) == 10

    def test_bundle_lookup(self):
        store = PartialStore(capacity=2)
        store.add(bundle(0))
        store.add(bundle(1))
        assert store.bundle(1)["flow"].to_list() == [1]
        store.add(bundle(2))
        with pytest.raises(SchedulerError):
            store.bundle(0)

    def test_replace_all_keeps_newest_seq(self):
        store = PartialStore(capacity=0)
        store.add(bundle(0))
        store.add(bundle(1))
        store.replace_all(bundle(99))
        assert len(store) == 1
        assert store.newest_seq == 1
        next_seq = store.add(bundle(2))
        assert next_seq == 2

    def test_replace_all_empty_raises(self):
        with pytest.raises(SchedulerError):
            PartialStore(capacity=1).replace_all(bundle(0))

    def test_newest_seq_empty(self):
        assert PartialStore(capacity=1).newest_seq is None


class TestPairStore:
    def test_expire_either_side(self):
        store = PairStore(left_capacity=2, right_capacity=2)
        for left in range(3):
            for right in range(3):
                store.add(left, right, bundle(left * 10 + right))
        store.expire(newest_left=2, newest_right=2)
        live_keys = [key for key, __ in store.live()]
        assert live_keys == [(1, 1), (1, 2), (2, 1), (2, 2)]

    def test_unbounded_side_never_expires(self):
        store = PairStore(left_capacity=2, right_capacity=0)
        store.add(0, 0, bundle(0))
        store.add(5, 0, bundle(1))
        store.expire(newest_left=5, newest_right=0)
        assert [key for key, __ in store.live()] == [(5, 0)]

    def test_live_sorted(self):
        store = PairStore(left_capacity=0, right_capacity=0)
        store.add(1, 0, bundle(0))
        store.add(0, 1, bundle(1))
        assert [key for key, __ in store.live()] == [(0, 1), (1, 0)]

    def test_replace_all(self):
        store = PairStore(left_capacity=0, right_capacity=0)
        store.add(0, 0, bundle(1))
        store.add(0, 1, bundle(2))
        store.replace_all(bundle(9), key=(0, 1))
        assert len(store) == 1
        assert store.live()[0][0] == (0, 1)

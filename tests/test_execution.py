"""Unit tests for programs, the interpreter, and the profiler."""

import pytest

from repro.errors import ExecutionError, UnknownInstructionError
from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT
from repro.kernel.execution import (
    Interpreter,
    Lit,
    Profiler,
    Program,
    Ref,
    SlotNames,
    TAG_MERGE,
    known_opcodes,
)

from conftest import int_bat


class TestProgram:
    def test_emit_and_pretty(self):
        program = Program(inputs=("x",), outputs=("y",))
        program.emit("bat.id", [Ref("x")], ["y"])
        text = program.pretty()
        assert "bat.id" in text
        assert "inputs: x" in text

    def test_validate_def_before_use(self):
        program = Program(inputs=(), outputs=())
        program.emit("bat.id", [Ref("ghost")], ["y"])
        with pytest.raises(ValueError):
            program.validate()

    def test_validate_missing_output(self):
        program = Program(inputs=("x",), outputs=("never",))
        with pytest.raises(ValueError):
            program.validate()

    def test_slots_read_written(self):
        program = Program(inputs=("x",))
        program.emit("bat.id", [Ref("x")], ["y"])
        assert program.slots_read() == {"x"}
        assert program.slots_written() == {"y"}

    def test_slot_names_unique(self):
        names = SlotNames("t")
        a, b = names.fresh(), names.fresh("hint")
        assert a != b
        assert b.endswith("_hint")


class TestInterpreter:
    def test_single_output(self):
        program = Program(inputs=("x",), outputs=("out",))
        program.emit("algebra.thetaselect", [Ref("x"), Lit(2), Lit(">")], ["out"])
        result = Interpreter().run(program, {"x": int_bat([1, 3, 5])})
        assert result["out"].to_list() == [1, 2]

    def test_multi_output(self):
        program = Program(inputs=("x",), outputs=("gids", "ext"))
        program.emit("group.group", [Ref("x")], ["gids", "ext", "ng"])
        result = Interpreter().run(program, {"x": int_bat([2, 1, 2])})
        assert result["gids"].to_list() == [1, 0, 1]

    def test_missing_input(self):
        program = Program(inputs=("x",), outputs=())
        with pytest.raises(ExecutionError):
            Interpreter().run(program, {})

    def test_unknown_opcode(self):
        program = Program(inputs=(), outputs=())
        program.emit("no.such.op", [], ["y"])
        with pytest.raises(UnknownInstructionError):
            Interpreter().run(program, {})

    def test_undefined_slot_mid_program(self):
        program = Program(inputs=(), outputs=())
        program.emit("bat.id", [Ref("ghost")], ["y"])
        with pytest.raises(ExecutionError):
            Interpreter().run(program, {})

    def test_operator_failure_wrapped(self):
        program = Program(inputs=("x",), outputs=("y",))
        program.emit("algebra.thetaselect", [Ref("x"), Lit(1), Lit("!!")], ["y"])
        with pytest.raises(ExecutionError):
            Interpreter().run(program, {"x": int_bat([1])})

    def test_known_opcodes_cover_calc_family(self):
        ops = known_opcodes()
        for op in ("calc.+", "calc.==", "calc.div", "mat.pack", "aggr.subsum"):
            assert op in ops

    def test_aggr_align_empties_all(self):
        program = Program(inputs=("a", "b"), outputs=("x", "y"))
        program.emit("aggr.align", [Ref("a"), Ref("b")], ["x", "y"])
        result = Interpreter().run(
            program, {"a": int_bat([5]), "b": BAT.empty(Atom.INT)}
        )
        assert result["x"].to_list() == []
        assert result["y"].to_list() == []

    def test_aggr_align_passthrough(self):
        program = Program(inputs=("a", "b"), outputs=("x", "y"))
        program.emit("aggr.align", [Ref("a"), Ref("b")], ["x", "y"])
        result = Interpreter().run(program, {"a": int_bat([5]), "b": int_bat([6])})
        assert result["x"].to_list() == [5]
        assert result["y"].to_list() == [6]


class TestProfiler:
    def test_records_by_tag(self):
        program = Program(inputs=("x",), outputs=("y",))
        program.emit("bat.id", [Ref("x")], ["m"])
        program.emit("bat.id", [Ref("m")], ["y"], tag=TAG_MERGE)
        profiler = Profiler()
        Interpreter().run(program, {"x": int_bat([1])}, profiler)
        assert profiler.calls["bat.id"] == 2
        assert set(profiler.by_tag) == {"main", "merge"}
        assert profiler.total > 0

    def test_merge_from(self):
        a, b = Profiler(), Profiler()
        a.record("main", "op", 1.0)
        b.record("main", "op", 2.0)
        b.record("merge", "op2", 3.0)
        a.merge_from(b)
        assert a.by_tag["main"] == pytest.approx(3.0)
        assert a.by_tag["merge"] == pytest.approx(3.0)
        assert a.calls["op"] == 2

    def test_reset(self):
        p = Profiler()
        p.record("main", "op", 1.0)
        p.reset()
        assert p.total == 0.0

"""The concurrency lint: guard tracking, lock graph, engine invariants.

Unit tests drive :func:`repro.analysis.concurrency.check_sources` over
small inline modules; the acceptance test at the bottom runs the full
lint over the real ``src/repro`` tree and requires it to be clean —
that is the CI gate ``repro check`` enforces.
"""

import textwrap
from pathlib import Path

from repro.analysis.concurrency import check_paths, check_sources
from repro.analysis.guards import LOCK_ORDER, LOCK_RANKS

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def lint(source, name="mod.py"):
    return check_sources([(name, textwrap.dedent(source))])


def codes(result):
    return [d.code for d in result.report.diagnostics]


GUARDED_CLASS = """
    import threading

    class Tally:
        def __init__(self):
            self._lock = threading.Lock()
            self.count = 0  # guarded-by: _lock
"""


def test_write_under_with_block_is_clean():
    result = lint(
        GUARDED_CLASS
        + """
        def bump(self):
            with self._lock:
                self.count += 1
    """
    )
    assert result.report.ok
    assert not result.report.diagnostics


def test_unguarded_write_and_read_are_flagged():
    result = lint(
        GUARDED_CLASS
        + """
        def bump(self):
            self.count += 1

        def peek(self):
            return self.count
    """
    )
    assert codes(result) == ["unguarded-write", "unguarded-read"]
    write = result.report.diagnostics[0]
    assert write.severity == "error"
    assert write.file == "mod.py"
    assert write.line is not None
    assert "_lock" in write.message


def test_init_writes_are_exempt():
    # __init__ publishes the object; no other thread can hold a
    # reference yet, so unguarded writes there are fine.
    result = lint(GUARDED_CLASS)
    assert result.report.ok


def test_guarded_method_convention_seeds_held_set():
    result = lint(
        GUARDED_CLASS
        + """
        def _bump_locked(self):  # guarded-by: self._lock
            self.count += 1

        def bump(self):
            with self._lock:
                self._bump_locked()
    """
    )
    assert result.report.ok


def test_condition_alias_counts_as_the_wrapped_lock():
    result = lint(
        """
        import threading

        class Buf:
            def __init__(self):
                self._lock = threading.RLock()
                self._not_full = threading.Condition(self._lock)
                self.rows = 0  # guarded-by: _lock

            def put(self):
                with self._not_full:
                    self.rows += 1
        """
    )
    assert result.report.ok


def test_sleep_under_lock_is_flagged():
    result = lint(
        GUARDED_CLASS
        + """
        def slow(self):
            import time
            with self._lock:
                time.sleep(0.1)
    """
    )
    assert "sleep-under-lock" in codes(result)


def test_module_level_lock_has_no_owner():
    result = lint(
        """
        import threading

        GLOBAL_LOCK = threading.Lock()
        """
    )
    assert "lock-no-owner" in codes(result)


def test_allow_comment_suppresses_a_finding():
    result = lint(
        GUARDED_CLASS
        + """
        def peek(self):
            return self.count  # repro-check: allow(unguarded-read)
    """
    )
    assert result.report.ok


def test_lock_order_violation_and_cycle():
    result = lint(
        """
        import threading

        class Basket:
            def __init__(self):
                self._lock = threading.Lock()

        class Scheduler:
            def __init__(self):
                self._lock = threading.Lock()

        def bad(basket: Basket, scheduler: Scheduler):
            with basket._lock:
                with scheduler._lock:
                    pass

        def good(basket: Basket, scheduler: Scheduler):
            with scheduler._lock:
                with basket._lock:
                    pass
        """
    )
    found = codes(result)
    assert "lock-order-violation" in found
    assert "lock-cycle" in found
    assert not result.report.ok


def test_acquire_guard_counts_as_held():
    result = lint(
        GUARDED_CLASS
        + """
        def try_bump(self):
            if not self._lock.acquire(blocking=False):
                return False
            try:
                self.count += 1
            finally:
                self._lock.release()
            return True
    """
    )
    assert result.report.ok


def test_self_call_closure_propagates_edges():
    # bump() takes Basket._lock, then calls a helper that takes
    # Scheduler._lock — the edge must be seen through the call.
    result = lint(
        """
        import threading

        class Basket:
            def __init__(self, scheduler):
                self._lock = threading.Lock()

            def _poke(self, scheduler: "Scheduler"):
                with scheduler._lock:
                    pass

            def bump(self, scheduler: "Scheduler"):
                with self._lock:
                    self._poke(scheduler)

        class Scheduler:
            def __init__(self):
                self._lock = threading.Lock()
        """
    )
    assert "lock-order-violation" in codes(result)


def test_lock_order_is_a_total_order():
    assert len(set(LOCK_ORDER)) == len(LOCK_ORDER)
    assert all(LOCK_RANKS[n] == i for i, n in enumerate(LOCK_ORDER))


def test_repro_check_is_clean_on_the_engine_sources():
    """The CI gate: zero findings on the annotated src/repro tree."""
    result = check_paths([str(SRC)])
    rendered = result.report.render()
    assert result.report.ok, rendered
    assert not result.report.warnings(), rendered
    # The one declared cross-class edge today: per-span pending locks
    # are taken before the cache's own lock on the miss path.
    edges = {(e.src, e.dst) for e in result.edges}
    assert ("FragmentCache.pending", "FragmentCache._lock") in edges

"""Overload stress tests: sustained 4× overload, blocked producers,
threaded ingest under faults.

These are the acceptance tests for the overload-control layer: a bounded
stream under a synthetic overload must keep memory bounded and report its
shedding through the profiler, and the failure paths (full ``Block``
basket with nobody draining, stalled receptors, slow factories) must
degrade instead of deadlocking.
"""

import threading
import time

import numpy as np
import pytest

from repro import DataCellEngine
from repro.core.overflow import Block, ShedOldest
from repro.errors import BasketOverflowError
from repro.kernel.execution.profiler import (
    COUNTER_INGEST_DROPPED,
    COUNTER_SHED,
)
from repro.testing.faults import SlowFactory, StallingSource

WINDOW = 200
STEP = 100
CAPACITY = 4 * WINDOW


def overloaded_engine(policy, capacity=CAPACITY):
    engine = DataCellEngine()
    engine.create_stream(
        "s", [("x1", "int"), ("x2", "int")], capacity=capacity, overflow=policy
    )
    query = engine.submit(
        f"SELECT x1, sum(x2) FROM s [RANGE {WINDOW} SLIDE {STEP}] "
        "GROUP BY x1 ORDER BY x1"
    )
    return engine, query


def chunk(rng, size):
    return {
        "x1": rng.integers(0, 4, size),
        "x2": rng.integers(0, 50, size),
    }


class TestShedOldestUnderOverload:
    def test_4x_overload_bounded_memory_nonzero_shed(self):
        """The acceptance scenario: arrivals at 4× the consumption rate.

        Each tick feeds 4 slides' worth of tuples but the scheduler only
        fires once, so producers outrun the factory by 4×.  The basket
        must never exceed its capacity and the profiler must report the
        overflow through the shed counter.
        """
        engine, query = overloaded_engine(ShedOldest())
        rng = np.random.default_rng(17)
        basket = next(iter(query.baskets.values()))
        max_parked = 0
        for __ in range(30):
            engine.feed("s", columns=chunk(rng, 4 * STEP))
            engine.scheduler.run_once()
            max_parked = max(max_parked, len(basket))
        engine.run_until_idle()
        shed = engine.profiler.counter(COUNTER_SHED)
        assert max_parked <= CAPACITY  # bounded memory, always
        assert shed > 0  # overload was real and accounted
        stats = engine.overload_stats()["s"]
        assert stats["shed"] == shed
        assert query.results()  # the query still produced windows
        # ShedOldest admits every incoming tuple (evicting parked ones),
        # so the admission count equals the offered count while `shed`
        # tracks the evictions.
        offered = 30 * 4 * STEP
        assert basket.appended_total == offered

    @pytest.mark.concurrency
    def test_threaded_4x_overload_stays_bounded(self):
        """Same scenario with a real producer thread and background
        scheduler, plus a SlowFactory throttling the service rate."""
        engine, query = overloaded_engine(ShedOldest(), capacity=2 * WINDOW)
        registration = engine.scheduler._registrations[query.name]
        registration.factory = SlowFactory(registration.factory, delay=0.002)
        basket = next(iter(query.baskets.values()))
        rng = np.random.default_rng(23)
        occupancy: list[int] = []
        stop = threading.Event()

        def producer():
            while not stop.is_set():
                engine.feed("s", columns=chunk(rng, STEP))
                occupancy.append(len(basket))
                time.sleep(0.0005)

        engine.start(poll_interval=0.0005)
        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.5)
        stop.set()
        thread.join(timeout=5.0)
        engine.stop(drain=True)
        assert max(occupancy) <= 2 * WINDOW
        assert engine.profiler.counter(COUNTER_SHED) > 0
        assert query.results()
        # Drain-on-stop finalized the accounting: nothing fireable remains.
        assert not query.factory.ready()


class TestBlockFailurePaths:
    def test_block_push_with_stopped_scheduler_times_out(self):
        """A full Block basket with nobody consuming must time out —
        never deadlock — and count the timeout."""
        engine, query = overloaded_engine(Block(timeout=0.05), capacity=STEP)
        engine.start()
        engine.stop(drain=False)  # scheduler exists but no longer runs
        engine.feed("s", columns=chunk(np.random.default_rng(5), STEP))
        start = time.monotonic()
        with pytest.raises(BasketOverflowError):
            engine.feed("s", columns=chunk(np.random.default_rng(6), STEP))
        assert time.monotonic() - start < 2.0
        assert engine.overload_stats()["s"]["block_timeouts"] == 1

    @pytest.mark.concurrency
    def test_block_backpressure_is_lossless_with_running_scheduler(self):
        """With the scheduler draining, Block never drops a tuple: every
        window is produced exactly as in the unbounded run."""
        engine, query = overloaded_engine(Block(timeout=10.0), capacity=WINDOW)
        rng = np.random.default_rng(31)
        chunks = [chunk(rng, STEP) for __ in range(20)]
        engine.start(poll_interval=0.0005)
        for columns in chunks:
            engine.feed("s", columns=columns)  # may park until room frees
        engine.stop(drain=True)
        assert engine.profiler.counter(COUNTER_SHED) == 0

        reference = DataCellEngine()
        reference.create_stream("s", [("x1", "int"), ("x2", "int")])
        ref_query = reference.submit(query.sql)
        for columns in chunks:
            reference.feed("s", columns=columns)
        reference.run_until_idle()
        assert query.result_rows() == ref_query.result_rows()


class TestReceptorUnderOverload:
    @pytest.mark.concurrency
    def test_background_ingest_sheds_instead_of_wedging(self):
        """A receptor feeding a full Fail-policy basket with no consumer
        must drop batches (counted) and finish — not hang or die."""
        engine = DataCellEngine()
        engine.create_stream(
            "s", [("x1", "int"), ("x2", "int")], capacity=64
        )
        query = engine.submit(
            "SELECT x1, count(*) FROM s [RANGE 1000 SLIDE 500] GROUP BY x1"
        )
        receptor = engine.receptor(query, "s")
        receptor.batch_size = 64
        receptor.max_retries = 1
        receptor.backoff = 0.001
        source = StallingSource(
            [(i % 5, i) for i in range(256)], every=64, seconds=0.001
        )
        receptor.start(source, on_batch=lambda n: None)
        receptor.join(timeout=10.0)
        assert receptor.delivered == 64  # first batch filled the basket
        assert receptor.dropped == 192  # the rest was shed at the receptor
        assert receptor.profiler.counter(COUNTER_INGEST_DROPPED) == 192
        assert source.stalls == 4

    @pytest.mark.concurrency
    def test_receptor_with_scheduler_delivers_under_stalls(self):
        """Stalling upstream + bounded basket + running scheduler: the
        pipeline keeps producing windows and loses nothing under Block."""
        engine = DataCellEngine()
        engine.create_stream(
            "s",
            [("x1", "int"), ("x2", "int")],
            capacity=256,
            overflow=Block(timeout=5.0),
        )
        query = engine.submit(
            "SELECT x1, count(*) FROM s [RANGE 100 SLIDE 50] GROUP BY x1"
        )
        receptor = engine.receptor(query, "s")
        receptor.batch_size = 100  # batches must fit the Block capacity
        rows = [(i % 3, i) for i in range(1000)]
        engine.start(poll_interval=0.0005)
        receptor.start(StallingSource(rows, every=200, seconds=0.002))
        receptor.join(timeout=30.0)
        engine.stop(drain=True)
        assert receptor.delivered == 1000
        assert receptor.dropped == 0
        assert len(query.results()) == (1000 - 100) // 50 + 1

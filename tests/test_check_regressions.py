"""Regression tests for the real findings ``repro check`` surfaced.

Running the new concurrency lint over the pre-PR tree flagged unguarded
reads of guarded counters on the observability seams and two scheduler
lifecycle races.  Each test here targets one finding; before the fixes
(``SpanRecorder.stats``, ``LogHistogram.export``, locking
``Observability.observe_opcode``'s registry access, guarding
``Scheduler._thread``/``_ever_started``) the corresponding test failed
— either deterministically (torn snapshots: ``dropped`` read before
``_next`` settled) or as a race caught within a few hundred iterations.
"""

import threading

from repro.core.engine import DataCellEngine
from repro.core.scheduler import Scheduler, SchedulerError
from repro.errors import ReproError
from repro.obs.core import Observability
from repro.obs.hist import LogHistogram
from repro.obs.spans import FiringSpan, SpanRecorder


def span(seq):
    return FiringSpan("q", seq, 0.0, 0.001, 1, 1, 0.0, {})


def hammer(threads):
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def test_span_recorder_stats_snapshot_is_internally_consistent():
    """collect_metrics/render_trace used to read _next and dropped as two
    separate unguarded loads; a concurrent record() between them produced
    dropped > total - capacity (an impossible combination)."""
    recorder = SpanRecorder(capacity=8)
    stop = threading.Event()
    snapshots = []

    def writer():
        seq = 0
        while not stop.is_set():
            seq += 1
            recorder.record(span(seq))

    def reader():
        for _ in range(2000):
            snapshots.append(recorder.stats())
        stop.set()

    hammer([threading.Thread(target=writer), threading.Thread(target=reader)])
    for stats in snapshots:
        assert stats["dropped"] == max(0, stats["total"] - stats["capacity"])
        assert stats["recorded"] == min(stats["total"], stats["capacity"])


def test_histogram_export_is_atomic():
    """_render_histogram used to iterate buckets() then read .sum/.count
    unguarded; observes in between broke the Prometheus invariant that
    the +Inf cumulative bucket equals _count."""
    hist = LogHistogram()
    stop = threading.Event()
    exports = []

    def writer():
        value = 1
        while not stop.is_set():
            hist.observe(value)
            value = value % 4096 + 1

    def reader():
        for _ in range(2000):
            exports.append(hist.export())
        stop.set()

    hammer([threading.Thread(target=writer), threading.Thread(target=reader)])
    for buckets, total, count in exports:
        assert buckets[-1][1] == count  # cumulative top == count
        assert count == 0 or total > 0


def test_observe_opcode_concurrent_registration_loses_no_samples():
    """observe_opcode used to setdefault into _opcodes outside the lock;
    two threads racing the first sample of an opcode could each create a
    histogram and drop the loser's samples."""
    for _ in range(50):
        obs = Observability()
        barrier = threading.Barrier(4)

        def sampler():
            barrier.wait()
            for _ in range(25):
                obs.observe_opcode("algebra.select", 0.001)

        hammer([threading.Thread(target=sampler) for _ in range(4)])
        [hist] = obs.opcode_histograms().values()
        assert hist.count == 4 * 25


def test_prometheus_histogram_inf_bucket_matches_count_under_load():
    engine = DataCellEngine()
    engine.create_stream("s", [("a", "int")])
    engine.submit("SELECT sum(a) AS x FROM s [RANGE 8 SLIDE 4]")
    from repro.obs.metrics import collect_metrics, render_prometheus

    stop = threading.Event()

    def feeder():
        i = 0
        while not stop.is_set():
            engine.feed("s", [(i,)])
            engine.run_until_idle()
            i += 1

    thread = threading.Thread(target=feeder)
    thread.start()
    try:
        for _ in range(50):
            text = render_prometheus(collect_metrics(engine), engine.obs)
            counts = {}
            infs = {}
            for line in text.splitlines():
                if line.startswith("#") or not line:
                    continue
                name, value = line.rsplit(" ", 1)
                if 'le="+Inf"' in name:
                    infs[name.split("{")[0].removesuffix("_bucket")] = value
                elif name.endswith("_count"):
                    counts[name.removesuffix("_count")] = value
            for metric, count in counts.items():
                assert infs.get(metric, count) == count, text
    finally:
        stop.set()
        thread.join()


def test_scheduler_double_start_races_to_exactly_one_winner():
    """start() used to test-then-set _thread without the lock: two
    concurrent start() calls could both pass the None check and spawn
    two scheduler loops over the same registrations."""
    for _ in range(100):
        scheduler = Scheduler()
        outcomes = []
        barrier = threading.Barrier(2)

        def starter():
            barrier.wait()
            try:
                scheduler.start()
                outcomes.append("ok")
            except SchedulerError:
                outcomes.append("refused")

        hammer([threading.Thread(target=starter) for _ in range(2)])
        try:
            assert sorted(outcomes) == ["ok", "refused"]
        finally:
            scheduler.stop()


def test_scheduler_stop_joins_outside_the_lock():
    """stop() joins the loop thread after releasing _lock — the loop's
    scans take _lock themselves, so joining under it deadlocks.  A
    simple start/feed/stop cycle must terminate promptly."""
    engine = DataCellEngine(workers=2)
    engine.create_stream("s", [("a", "int")])
    handle = engine.submit("SELECT sum(a) AS x FROM s [RANGE 8 SLIDE 4]")
    engine.scheduler.start()
    for i in range(32):
        engine.feed("s", [(i,)])
    done = threading.Event()

    def stopper():
        engine.scheduler.stop()
        done.set()

    thread = threading.Thread(target=stopper)
    thread.start()
    thread.join(timeout=10)
    assert done.is_set(), "scheduler.stop() deadlocked"
    assert handle.results()


def test_worker_error_is_reported_via_the_lock():
    scheduler = Scheduler()

    class Boom(Exception):
        pass

    class BadFactory:
        name = "bad"

        def ready(self):
            return True

        def step(self, profiler=None):
            raise Boom("factory exploded")

        def baskets(self):
            return []

    class NullEmitter:
        def emit(self, batch):  # pragma: no cover - never reached
            pass

    scheduler.register(BadFactory(), NullEmitter())
    scheduler.start()
    try:
        scheduler.stop()
        raise AssertionError("worker error was swallowed")
    except (Boom, ReproError, SchedulerError):
        pass

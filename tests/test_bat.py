"""Unit tests for BATs and the append builder."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import AlignmentError, KernelError, TypeMismatchError
from repro.kernel.atoms import Atom
from repro.kernel.bat import BAT, BATBuilder, require_aligned, require_same_atom


class TestConstruction:
    def test_from_values(self):
        b = BAT.from_values([1, 2, 3], Atom.INT)
        assert b.count == 3
        assert b.to_list() == [1, 2, 3]

    def test_from_array_infers_atom(self):
        b = BAT.from_array(np.array([1.0, 2.0]))
        assert b.atom == Atom.FLT

    def test_from_array_coerces_dtype(self):
        b = BAT.from_array(np.array([1, 2], dtype=np.int32), Atom.INT)
        assert b.tail.dtype == np.int64

    def test_empty(self):
        b = BAT.empty(Atom.STR)
        assert b.is_empty()
        assert len(b) == 0

    def test_dense_oids(self):
        b = BAT.dense_oids(5, 3)
        assert b.to_list() == [5, 6, 7]
        assert b.atom == Atom.OID

    def test_two_dimensional_tail_rejected(self):
        with pytest.raises(KernelError):
            BAT(np.zeros((2, 2)), Atom.FLT)


class TestHeadAlignment:
    def test_hrange(self):
        b = BAT.from_values([10, 20], Atom.INT, hseq=7)
        assert b.hrange == (7, 9)

    def test_positions_of(self):
        b = BAT.from_values([10, 20, 30], Atom.INT, hseq=5)
        assert b.positions_of(np.array([5, 7])).tolist() == [0, 2]

    def test_positions_of_out_of_range(self):
        b = BAT.from_values([10], Atom.INT, hseq=5)
        with pytest.raises(AlignmentError):
            b.positions_of(np.array([4]))
        with pytest.raises(AlignmentError):
            b.positions_of(np.array([6]))

    def test_slice_keeps_alignment(self):
        b = BAT.from_values([1, 2, 3, 4], Atom.INT, hseq=10)
        s = b.slice(1, 3)
        assert s.to_list() == [2, 3]
        assert s.hseq == 11

    def test_slice_clamps(self):
        b = BAT.from_values([1, 2], Atom.INT)
        assert b.slice(-5, 99).to_list() == [1, 2]
        assert b.slice(3, 1).to_list() == []

    def test_rebase(self):
        b = BAT.from_values([1], Atom.INT, hseq=0)
        assert b.rebase(42).hseq == 42

    def test_require_aligned(self):
        a = BAT.from_values([1, 2], Atom.INT, hseq=3)
        b = BAT.from_values([5, 6], Atom.INT, hseq=3)
        require_aligned(a, b)  # no raise
        with pytest.raises(AlignmentError):
            require_aligned(a, b.rebase(4))

    def test_require_same_atom(self):
        a = BAT.from_values([1], Atom.INT)
        with pytest.raises(TypeMismatchError):
            require_same_atom(a, BAT.from_values([1.0], Atom.FLT))


class TestBuilder:
    def test_append_and_snapshot(self):
        builder = BATBuilder(Atom.INT)
        for i in range(100):
            builder.append(i)
        snap = builder.snapshot()
        assert snap.to_list() == list(range(100))

    def test_extend_bulk(self):
        builder = BATBuilder(Atom.FLT)
        builder.extend(np.arange(5, dtype=np.float64))
        builder.extend([9.5])
        assert builder.snapshot().to_list() == [0.0, 1.0, 2.0, 3.0, 4.0, 9.5]

    def test_drop_head_advances_hseq(self):
        builder = BATBuilder(Atom.INT)
        builder.extend(range(10))
        builder.drop_head(4)
        snap = builder.snapshot()
        assert snap.to_list() == [4, 5, 6, 7, 8, 9]
        assert snap.hseq == 4

    def test_drop_head_more_than_length(self):
        builder = BATBuilder(Atom.INT)
        builder.extend(range(3))
        builder.drop_head(10)
        assert len(builder) == 0
        assert builder.hseq == 3

    def test_drop_head_zero_noop(self):
        builder = BATBuilder(Atom.INT)
        builder.extend(range(3))
        builder.drop_head(0)
        assert len(builder) == 3

    @given(st.lists(st.integers(-1000, 1000), max_size=200), st.integers(0, 50))
    def test_drop_then_snapshot_matches_python(self, values, drop):
        builder = BATBuilder(Atom.INT)
        builder.extend(values)
        builder.drop_head(drop)
        assert builder.snapshot().to_list() == values[min(drop, len(values)):]

    @given(st.lists(st.lists(st.integers(-5, 5), max_size=20), max_size=20))
    def test_interleaved_extends(self, chunks):
        builder = BATBuilder(Atom.INT)
        expected: list[int] = []
        for chunk in chunks:
            builder.extend(chunk)
            expected.extend(chunk)
        assert builder.snapshot().to_list() == expected

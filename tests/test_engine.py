"""Tests for the DataCellEngine facade."""

import numpy as np
import pytest

from repro import DataCellEngine
from repro.errors import CatalogError, ReproError, UnsupportedQueryError


@pytest.fixture
def engine():
    e = DataCellEngine()
    e.create_stream("s", [("x1", "int"), ("x2", "int")])
    table = e.create_table("dim", [("k", "int"), ("name", "str")])
    table.append_rows([(1, "one"), (2, "two"), (3, "three")])
    return e


class TestSchemaManagement:
    def test_type_name_aliases(self):
        e = DataCellEngine()
        e.create_stream(
            "z",
            [
                ("a", "int"),
                ("b", "float"),
                ("c", "str"),
                ("d", "bool"),
                ("e", "timestamp"),
            ],
        )
        schema = e.catalog.stream("z").schema
        assert len(schema) == 5

    def test_unknown_type_rejected(self):
        e = DataCellEngine()
        with pytest.raises(CatalogError):
            e.create_stream("z", [("a", "wibble")])

    def test_insert_into_table(self, engine):
        assert engine.insert("dim", [(4, "four")]) == 1
        assert engine.catalog.table("dim").count == 4


class TestSubmitAndFeed:
    def test_submit_returns_handle(self, engine):
        query = engine.submit("SELECT count(*) FROM s [RANGE 10 SLIDE 5]")
        assert query.name == "q1"
        assert query.mode == "incremental"
        assert "s" in query.baskets

    def test_named_queries(self, engine):
        query = engine.submit("SELECT count(*) FROM s [RANGE 10 SLIDE 5]", name="mine")
        assert engine.query("mine") is query

    def test_unknown_mode(self, engine):
        with pytest.raises(ReproError):
            engine.submit("SELECT count(*) FROM s [RANGE 10 SLIDE 5]", mode="magic")

    def test_feed_requires_exactly_one_source(self, engine):
        engine.submit("SELECT count(*) FROM s [RANGE 10 SLIDE 5]")
        with pytest.raises(ReproError):
            engine.feed("s")
        with pytest.raises(ReproError):
            engine.feed("s", rows=[(1, 2)], columns={"x1": [1], "x2": [2]})

    def test_feed_unknown_stream(self, engine):
        with pytest.raises(CatalogError):
            engine.feed("ghost", rows=[(1, 2)])

    def test_feed_rows_and_columns_agree(self, engine):
        q_rows = engine.submit("SELECT sum(x1) FROM s [RANGE 4 SLIDE 2]")
        q_cols = engine.submit("SELECT sum(x1) FROM s [RANGE 4 SLIDE 2]")
        engine.feed("s", rows=[(1, 0), (2, 0), (3, 0), (4, 0)])
        engine.run_until_idle()
        assert q_rows.result_rows() == q_cols.result_rows() == [[(10,)]]

    def test_remove_releases_baskets(self, engine):
        query = engine.submit("SELECT count(*) FROM s [RANGE 10 SLIDE 5]")
        engine.remove(query.name)
        engine.feed("s", rows=[(1, 2)] * 20)
        engine.run_until_idle()
        assert query.results() == []
        assert query.baskets["s"].count == 0  # not fed anymore

    def test_response_times_exposed(self, engine):
        query = engine.submit("SELECT count(*) FROM s [RANGE 10 SLIDE 5]")
        engine.feed("s", rows=[(i, i) for i in range(20)])
        engine.run_until_idle()
        times = query.response_times()
        assert len(times) == 3
        assert all(t > 0 for t in times)


class TestOneTimeQueries:
    def test_query_once_over_table(self, engine):
        out = engine.query_once("SELECT k, name FROM dim WHERE k > 1 ORDER BY k DESC")
        assert out == {"k": [3, 2], "name": ["three", "two"]}

    def test_query_once_aggregate(self, engine):
        out = engine.query_once("SELECT count(*), max(k) FROM dim")
        assert out == {"col0": [3], "col1": [3]}

    def test_query_once_rejects_streams(self, engine):
        with pytest.raises(UnsupportedQueryError):
            engine.query_once("SELECT count(*) FROM s [RANGE 10 SLIDE 5]")


class TestIntrospection:
    def test_explain(self, engine):
        text = engine.explain("SELECT x1 FROM s [RANGE 10 SLIDE 5] WHERE x1 > 2")
        assert "Scan[stream]" in text
        assert "Filter" in text

    def test_explain_continuous(self, engine):
        text = engine.explain_continuous(
            "SELECT x1, sum(x2) FROM s [RANGE 10 SLIDE 5] GROUP BY x1"
        )
        assert "fragment" in text
        assert "combine" in text
        assert "aggr.subsum" in text

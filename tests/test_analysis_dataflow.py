"""Dataflow analysis: def-before-use, single assignment, liveness, DCE."""

from repro.analysis import (
    analyze_dataflow,
    dead_instructions,
    eliminate_dead_instructions,
)
from repro.kernel.execution.program import Instr, Lit, Program, Ref


def prog(inputs, outputs, instrs):
    return Program(
        inputs=tuple(inputs), outputs=tuple(outputs), instructions=list(instrs)
    )


def test_clean_program_has_no_diagnostics():
    p = prog(
        ["a", "b"],
        ["c"],
        [Instr("calc.add", (Ref("a"), Ref("b")), ("c",))],
    )
    report = analyze_dataflow(p)
    assert report.ok
    assert not report.diagnostics


def test_def_before_use_is_an_error():
    p = prog([], ["c"], [Instr("bat.mirror", (Ref("ghost"),), ("c",))])
    report = analyze_dataflow(p)
    assert not report.ok
    assert any("before any definition" in d.message for d in report.errors())


def test_duplicate_input_declaration():
    p = prog(["a", "a"], [], [])
    assert any(
        "declared twice" in d.message for d in analyze_dataflow(p).errors()
    )


def test_overwriting_an_input_is_an_error():
    p = prog(
        ["a"], ["a"], [Instr("bat.materialize", (Ref("a"),), ("a",))]
    )
    report = analyze_dataflow(p)
    assert any("overwrites program input" in d.message for d in report.errors())


def test_double_assignment_is_an_error():
    p = prog(
        ["a"],
        ["b"],
        [
            Instr("bat.mirror", (Ref("a"),), ("b",)),
            Instr("bat.materialize", (Ref("a"),), ("b",)),
        ],
    )
    report = analyze_dataflow(p)
    assert any("single-assignment" in d.message for d in report.errors())


def test_undefined_output_is_an_error():
    p = prog(["a"], ["never"], [])
    report = analyze_dataflow(p)
    assert any("never defined" in d.message for d in report.errors())


def test_unused_input_is_a_warning_not_error():
    p = prog(["a", "b"], ["c"], [Instr("bat.mirror", (Ref("a"),), ("c",))])
    report = analyze_dataflow(p)
    assert report.ok  # warnings only
    assert any("never read" in d.message for d in report.warnings())


def test_dead_instruction_detection_and_elimination():
    p = prog(
        ["a"],
        ["keepme"],
        [
            Instr("bat.mirror", (Ref("a"),), ("keepme",)),
            # dead chain: u feeds v, nothing reads v
            Instr("bat.mirror", (Ref("a"),), ("u",)),
            Instr("bat.materialize", (Ref("u"),), ("v",)),
        ],
    )
    assert dead_instructions(p) == [1, 2]
    report = analyze_dataflow(p)
    assert report.ok
    assert sum("dead instruction" in d.message for d in report.warnings()) == 2

    removed = eliminate_dead_instructions(p)
    assert removed == 2
    assert len(p.instructions) == 1
    p.validate()  # still a well-formed program


def test_keep_slots_guard_against_elimination():
    p = prog(
        ["a"],
        [],
        [Instr("aggr.sum", (Ref("a"),), ("total",))],
    )
    assert dead_instructions(p, keep=frozenset({"total"})) == []
    assert eliminate_dead_instructions(p, keep=frozenset({"total"})) == 0
    assert eliminate_dead_instructions(p) == 1


def test_literals_are_not_slot_references():
    p = prog(
        [],
        ["c"],
        [Instr("calc.const", (Lit(3), Lit("int")), ("c",))],
    )
    assert analyze_dataflow(p).ok

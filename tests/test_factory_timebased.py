"""Behavioural tests for time-based sliding windows.

Arrival timestamps are supplied explicitly (microseconds), so the tests
control exactly which tuples fall into which time slice — including empty
basic windows, which the paper says are "recognized and simply skipped".
"""

import numpy as np
import pytest

from repro import DataCellEngine

from conftest import assert_rows_equal, ref_q1


@pytest.fixture
def engine():
    e = DataCellEngine()
    e.create_stream("s", [("x1", "int"), ("x2", "int")])
    return e


SQL = (
    "SELECT x1, sum(x2) FROM s [RANGE 40 SECONDS SLIDE 10 SECONDS] "
    "WHERE x1 > 3 GROUP BY x1 ORDER BY x1"
)

US = 1_000_000


def feed_with_ts(engine, x1, x2, ts):
    engine.feed(
        "s",
        columns={"x1": np.asarray(x1), "x2": np.asarray(x2)},
        timestamps=np.asarray(ts, dtype=np.int64),
    )


class TestTimeWindows:
    def test_fires_only_when_boundary_passed(self, engine):
        query = engine.submit(SQL)
        # 39 seconds of data: first window [0, 40s) not complete yet
        feed_with_ts(engine, [5, 6], [1, 2], [0, 39 * US])
        engine.run_until_idle()
        assert query.results() == []
        # a tuple at 41s closes the first window
        feed_with_ts(engine, [7], [3], [41 * US])
        engine.run_until_idle()
        assert len(query.results()) == 1
        assert query.results()[0].rows() == [(5, 1), (6, 2)]

    def test_sliding_by_time(self, engine):
        query = engine.submit(SQL)
        # one tuple every 5 seconds for 100 seconds
        count = 21
        ts = [i * 5 * US for i in range(count)]
        x1 = [i % 10 for i in range(count)]
        x2 = [i for i in range(count)]
        feed_with_ts(engine, x1, x2, ts)
        engine.run_until_idle()
        results = query.results()
        # windows close at 40s, 50s, ..., 100s -> tuple at 100s closes [60,100)
        assert len(results) == 7
        for k, batch in enumerate(results):
            lo_t, hi_t = k * 10 * US, (k * 10 + 40) * US
            sel = [
                (a, b)
                for a, b, t in zip(x1, x2, ts)
                if lo_t <= t < hi_t and a > 3
            ]
            expected: dict[int, int] = {}
            for a, b in sel:
                expected[a] = expected.get(a, 0) + b
            assert batch.rows() == sorted(expected.items())

    def test_empty_basic_windows_skipped(self, engine):
        query = engine.submit(SQL)
        # burst at t=0, silence, then a tuple at 95s: several empty slices
        feed_with_ts(engine, [9, 8], [10, 20], [0, US])
        feed_with_ts(engine, [7], [30], [95 * US])
        engine.run_until_idle()
        results = query.results()
        assert len(results) == 6  # boundaries 40..90s all closed by the 95s tuple
        assert results[0].rows() == [(8, 20), (9, 10)]
        # window [20s, 60s) holds nothing
        assert results[2].rows() == []

    def test_matches_reevaluation(self, engine):
        qi = engine.submit(SQL)
        qr = engine.submit(SQL, mode="reeval")
        rng = np.random.default_rng(21)
        count = 200
        ts = np.cumsum(rng.integers(0, 2 * US, count)).astype(np.int64)
        x1 = rng.integers(0, 10, count).astype(np.int64)
        x2 = rng.integers(0, 50, count).astype(np.int64)
        feed_with_ts(engine, x1, x2, ts)
        engine.run_until_idle()
        assert len(qi.results()) > 3
        assert qi.result_rows() == qr.result_rows()

    def test_time_landmark(self, engine):
        sql = "SELECT count(*) FROM s [LANDMARK SLIDE 10 SECONDS]"
        qi = engine.submit(sql)
        qr = engine.submit(sql, mode="reeval")
        ts = [i * US for i in range(0, 50, 2)]  # every 2s for 50s
        feed_with_ts(engine, [1] * len(ts), [1] * len(ts), ts)
        engine.run_until_idle()
        assert len(qi.results()) == 4
        assert qi.result_rows() == qr.result_rows()
        assert qi.results()[0].rows() == [(5,)]  # tuples in [0, 10s)

"""The ``repro lint`` driver: harvesting, CLI exit codes, --dump output."""

import io
from pathlib import Path

from repro import DataCellEngine
from repro.analysis.lint import (
    harvest_benchmarks,
    harvest_python_file,
    lint_sql,
    run_lint_cli,
)

REPO = Path(__file__).resolve().parent.parent


def run(argv):
    out = io.StringIO()
    code = run_lint_cli(argv, out=out)
    return code, out.getvalue()


def test_lint_all_examples_and_benchmarks_pass():
    code, output = run([str(REPO / "examples"), str(REPO / "benchmarks")])
    assert code == 0, output
    assert "0 failed" in output
    # every example file with a submit() contributes at least one query
    assert "quickstart.py" in output
    assert "conftest.py" in output


def test_lint_explicit_sql_ok():
    code, output = run(
        [
            "--sql",
            "SELECT sensor, avg(value) FROM r [RANGE 100 SLIDE 10] GROUP BY sensor",
            "--stream",
            "r(sensor int, value float)",
        ]
    )
    assert code == 0
    assert output.startswith("ok:")


def test_lint_dump_prints_typed_programs():
    code, output = run(
        [
            "--sql",
            "SELECT avg(value) FROM r [RANGE 100 SLIDE 10]",
            "--stream",
            "r(sensor int, value float)",
            "--dump",
        ]
    )
    assert code == 0
    assert "== combine (per slide) ==" in output
    assert ":flt" in output  # inferred atom annotations
    assert "#merge" in output  # cost tags


def test_lint_unplannable_sql_fails():
    code, output = run(
        ["--sql", "SELECT nope FROM r [RANGE 4 SLIDE 2]", "--stream", "r(a int)"]
    )
    assert code == 1
    assert "FAIL" in output and "does not plan" in output


def test_lint_missing_target_errors():
    code, output = run([str(REPO / "no_such_dir_xyz")])
    assert code != 0 or "does not exist" in output


def test_harvest_resolves_fstring_sql(tmp_path):
    source = tmp_path / "example.py"
    source.write_text(
        "SCALE = 1_024\n"
        "def main():\n"
        "    step = SCALE // 8\n"
        "    engine.create_stream('w', [('a', 'int'), ('b', 'float')])\n"
        "    engine.submit(\n"
        "        f'SELECT sum(a) FROM w [RANGE {SCALE} SLIDE {step}]'\n"
        "    )\n"
    )
    harvest = harvest_python_file(source)
    assert harvest.streams == [("w", [("a", "int"), ("b", "float")])]
    assert harvest.queries == ["SELECT sum(a) FROM w [RANGE 1024 SLIDE 128]"]
    assert harvest.skipped == 0


def test_harvest_skips_dynamic_sql(tmp_path):
    source = tmp_path / "example.py"
    source.write_text(
        "engine.create_stream('w', [('a', 'int')])\n"
        "engine.submit(make_sql())\n"
    )
    harvest = harvest_python_file(source)
    assert harvest.queries == []
    assert harvest.skipped == 1


def test_harvest_benchmarks_yields_all_builders():
    result = harvest_benchmarks(REPO / "benchmarks")
    assert result is not None
    engine, queries = result
    assert isinstance(engine, DataCellEngine)
    assert len(queries) >= 3  # q1, q2, q3
    assert all("SELECT" in q.upper() for q in queries)


def test_lint_sql_warns_on_unsupported_but_does_not_fail():
    engine = DataCellEngine()
    engine.create_stream("s", [("a", "int")])
    # a stream scan without a window clause is outside the rewritable class
    report, dump = lint_sql(engine, "SELECT count(*) FROM s")
    assert report.ok
    assert any("not rewritable" in d.message for d in report.warnings())
    assert dump is None


def test_lint_fuzz_corpus_passes():
    code, output = run(["--fuzz", "12", "--seed", "5", "--quiet"])
    assert code == 0, output
    assert "12 queries checked, 0 failed" in output
    assert "--fuzz[0]" in output


def test_lint_fuzz_corpus_is_deterministic():
    first = run(["--fuzz", "6", "--seed", "9", "--quiet"])
    second = run(["--fuzz", "6", "--seed", "9", "--quiet"])
    assert first == second
    assert first != run(["--fuzz", "6", "--seed", "10", "--quiet"])

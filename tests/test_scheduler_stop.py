"""Scheduler shutdown after a background-loop crash (docs/OPERATIONS.md).

When the background loop dies on a factory exception, ``stop()`` re-raises
that error and skips draining — the engine is in an undefined state.  The
documented contract for producers parked on a ``Block`` overflow policy is
that they must not sleep forever on a scheduler that will never free room:
``stop()`` wakes them and each raises ``BasketOverflowError``.
"""

import threading
import time

import pytest

from repro import DataCellEngine
from repro.core.factory import FactoryBase
from repro.core.overflow import Block
from repro.errors import BasketOverflowError


class _ExplodingFactory(FactoryBase):
    name = "boom"

    def ready(self):
        return True

    def step(self, profiler=None):
        raise RuntimeError("kernel exploded")


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return predicate()


class TestStopAfterCrash:
    def build(self):
        """An engine whose loop will crash, with a bounded Block stream.

        The continuous query needs 8 tuples per window but the basket
        caps at 4, so the query never fires and never frees room — the
        only way a parked producer wakes is the shutdown path.
        """
        engine = DataCellEngine()
        engine.create_stream(
            "s", [("x1", "int")], capacity=4, overflow=Block(timeout=30.0)
        )
        query = engine.submit("SELECT count(*) AS n FROM s [RANGE 8 SLIDE 8]")
        engine.scheduler.register(_ExplodingFactory())
        return engine, query

    def test_stop_wakes_block_parked_producers(self):
        engine, query = self.build()
        basket = next(iter(query.baskets.values()))
        engine.feed("s", rows=[(i,) for i in range(4)])  # basket now full

        caught = []
        parked = threading.Event()

        def producer():
            parked.set()
            try:
                engine.feed("s", rows=[(99,), (100,)])
            except BasketOverflowError as exc:
                caught.append(exc)

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert parked.wait(5.0)
        assert wait_until(lambda: basket.block_waits >= 1)

        engine.start(poll_interval=0.0001)
        assert wait_until(lambda: engine.scheduler._thread is None
                          or not engine.scheduler._thread.is_alive())

        with pytest.raises(RuntimeError, match="kernel exploded"):
            engine.stop(drain=True)

        # The parked producer was woken, not left to its 30 s timeout.
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert len(caught) == 1
        assert "worker error" in str(caught[0])
        assert basket.block_timeouts == 0  # woken, not timed out

        # Documented post-crash state: drain was skipped, the basket
        # still parks the tuples that never formed a window.
        assert len(basket) == 4
        assert query.results() == []

        # A repeated stop() neither resurfaces the error nor drains.
        engine.stop()
        assert len(basket) == 4
        engine.close()

    def test_appends_after_aborted_stop_fail_fast(self):
        engine, query = self.build()
        engine.feed("s", rows=[(i,) for i in range(4)])
        engine.start(poll_interval=0.0001)
        assert wait_until(lambda: not engine.scheduler._thread.is_alive())
        with pytest.raises(RuntimeError, match="kernel exploded"):
            engine.stop(drain=True)
        # Later blocking appends see the abort reason immediately instead
        # of parking for their full timeout.
        start = time.monotonic()
        with pytest.raises(BasketOverflowError, match="worker error"):
            engine.feed("s", rows=[(1,)])
        assert time.monotonic() - start < 5.0
        engine.close()

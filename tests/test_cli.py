"""Tests for the DataCell console (``python -m repro``)."""

import io

import numpy as np
import pytest

from repro.cli import Console, _parse_schema
from repro.errors import ReproError
from repro.workloads import write_csv


def run_script(lines, console=None):
    console = console or Console(out=io.StringIO())
    for line in lines:
        alive = console.execute(line)
        if not alive:
            break
    return console, console.out.getvalue()


class TestSchemaParsing:
    def test_basic(self):
        name, columns = _parse_schema("s (a int, b float)")
        assert name == "s"
        assert columns == [("a", "int"), ("b", "float")]

    def test_bad_shapes(self):
        with pytest.raises(ReproError):
            _parse_schema("nope")
        with pytest.raises(ReproError):
            _parse_schema("s (a)")
        with pytest.raises(ReproError):
            _parse_schema("s ()")


class TestCommands:
    def test_create_and_streams_listing(self):
        __, out = run_script(
            ["CREATE STREAM s (x1 int, x2 int)", "STREAMS"]
        )
        assert "stream s created" in out
        assert "s (x1 int, x2 int)" in out

    def test_full_session(self, tmp_path):
        rng = np.random.default_rng(1)
        path = tmp_path / "data.csv"
        write_csv(
            path,
            {"x1": rng.integers(0, 5, 100), "x2": rng.integers(0, 9, 100)},
            order=["x1", "x2"],
        )
        console, out = run_script(
            [
                "CREATE STREAM s (x1 int, x2 int)",
                "SUBMIT SELECT x1, sum(x2) FROM s [RANGE 40 SLIDE 20] GROUP BY x1 ORDER BY x1",
                f"FEED s FROM {path} CHUNK 32",
                "RESULTS q1 LAST",
                "QUERIES",
            ]
        )
        assert "registered q1 [incremental]" in out
        assert "fed 100 tuple(s)" in out
        assert "q1: 4 window(s)" in out

    def test_reeval_mode(self):
        __, out = run_script(
            [
                "CREATE STREAM s (x1 int, x2 int)",
                "SUBMIT REEVAL SELECT count(*) FROM s [RANGE 4 SLIDE 2]",
            ]
        )
        assert "registered q1 [reeval]" in out

    def test_one_time_query_and_load(self, tmp_path):
        path = tmp_path / "dim.csv"
        write_csv(path, {"k": [1, 2, 3], "v": [10, 20, 30]}, order=["k", "v"])
        __, out = run_script(
            [
                "CREATE TABLE dim (k int, v int)",
                f"LOAD dim FROM {path}",
                "SELECT k, v FROM dim WHERE v > 15 ORDER BY k",
            ]
        )
        assert "loaded 3 row(s)" in out
        assert "2 | 20" in out
        assert "(2 row(s))" in out

    def test_explain_variants(self):
        __, out = run_script(
            [
                "CREATE STREAM s (x1 int, x2 int)",
                "EXPLAIN SELECT x1 FROM s [RANGE 10 SLIDE 5] WHERE x1 > 1",
                "EXPLAIN CONTINUOUS SELECT sum(x1) FROM s [RANGE 10 SLIDE 5]",
            ]
        )
        assert "Scan[stream]" in out
        assert "combine" in out

    def test_errors_keep_console_alive(self):
        console, out = run_script(
            ["WIBBLE", "CREATE STREAM s (x1 int)", "STREAMS"]
        )
        assert "unknown command" in out
        assert "stream s created" in out

    def test_quit_stops(self):
        console, __ = run_script(["QUIT", "CREATE STREAM s (x1 int)"])
        assert not console.engine._stream_baskets  # nothing after QUIT

    def test_comments_and_blank_lines(self):
        __, out = run_script(["", "-- a comment", "HELP"])
        assert "CREATE STREAM" in out

    def test_run_command(self):
        __, out = run_script(
            [
                "CREATE STREAM s (x1 int)",
                "SUBMIT SELECT count(*) FROM s [RANGE 2 SLIDE 1]",
                "RUN",
            ]
        )
        assert "fired 0 window(s)" in out

    def test_script_file_entry_point(self, tmp_path):
        script = tmp_path / "session.dcl"
        script.write_text("CREATE STREAM s (x1 int)\nSTREAMS\nQUIT\n")
        from repro.cli import main

        assert main([str(script)]) == 0

"""Tests for the DataCell console (``python -m repro``)."""

import io

import numpy as np
import pytest

from repro.cli import Console, _parse_schema
from repro.core.overflow import ShedOldest
from repro.errors import ReproError
from repro.workloads import write_csv


def run_script(lines, console=None):
    console = console or Console(out=io.StringIO())
    for line in lines:
        alive = console.execute(line)
        if not alive:
            break
    return console, console.out.getvalue()


class TestSchemaParsing:
    def test_basic(self):
        name, columns = _parse_schema("s (a int, b float)")
        assert name == "s"
        assert columns == [("a", "int"), ("b", "float")]

    def test_bad_shapes(self):
        with pytest.raises(ReproError):
            _parse_schema("nope")
        with pytest.raises(ReproError):
            _parse_schema("s (a)")
        with pytest.raises(ReproError):
            _parse_schema("s ()")


class TestCommands:
    def test_create_and_streams_listing(self):
        __, out = run_script(
            ["CREATE STREAM s (x1 int, x2 int)", "STREAMS"]
        )
        assert "stream s created" in out
        assert "s (x1 int, x2 int)" in out

    def test_full_session(self, tmp_path):
        rng = np.random.default_rng(1)
        path = tmp_path / "data.csv"
        write_csv(
            path,
            {"x1": rng.integers(0, 5, 100), "x2": rng.integers(0, 9, 100)},
            order=["x1", "x2"],
        )
        console, out = run_script(
            [
                "CREATE STREAM s (x1 int, x2 int)",
                "SUBMIT SELECT x1, sum(x2) FROM s [RANGE 40 SLIDE 20] GROUP BY x1 ORDER BY x1",
                f"FEED s FROM {path} CHUNK 32",
                "RESULTS q1 LAST",
                "QUERIES",
            ]
        )
        assert "registered q1 [incremental]" in out
        assert "fed 100 tuple(s)" in out
        assert "q1: 4 window(s)" in out

    def test_reeval_mode(self):
        __, out = run_script(
            [
                "CREATE STREAM s (x1 int, x2 int)",
                "SUBMIT REEVAL SELECT count(*) FROM s [RANGE 4 SLIDE 2]",
            ]
        )
        assert "registered q1 [reeval]" in out

    def test_one_time_query_and_load(self, tmp_path):
        path = tmp_path / "dim.csv"
        write_csv(path, {"k": [1, 2, 3], "v": [10, 20, 30]}, order=["k", "v"])
        __, out = run_script(
            [
                "CREATE TABLE dim (k int, v int)",
                f"LOAD dim FROM {path}",
                "SELECT k, v FROM dim WHERE v > 15 ORDER BY k",
            ]
        )
        assert "loaded 3 row(s)" in out
        assert "2 | 20" in out
        assert "(2 row(s))" in out

    def test_explain_variants(self):
        __, out = run_script(
            [
                "CREATE STREAM s (x1 int, x2 int)",
                "EXPLAIN SELECT x1 FROM s [RANGE 10 SLIDE 5] WHERE x1 > 1",
                "EXPLAIN CONTINUOUS SELECT sum(x1) FROM s [RANGE 10 SLIDE 5]",
            ]
        )
        assert "Scan[stream]" in out
        assert "combine" in out

    def test_errors_keep_console_alive(self):
        console, out = run_script(
            ["WIBBLE", "CREATE STREAM s (x1 int)", "STREAMS"]
        )
        assert "unknown command" in out
        assert "stream s created" in out

    def test_quit_stops(self):
        console, __ = run_script(["QUIT", "CREATE STREAM s (x1 int)"])
        assert not console.engine._stream_baskets  # nothing after QUIT

    def test_comments_and_blank_lines(self):
        __, out = run_script(["", "-- a comment", "HELP"])
        assert "CREATE STREAM" in out

    def test_run_command(self):
        __, out = run_script(
            [
                "CREATE STREAM s (x1 int)",
                "SUBMIT SELECT count(*) FROM s [RANGE 2 SLIDE 1]",
                "RUN",
            ]
        )
        assert "fired 0 window(s)" in out

    def test_script_file_entry_point(self, tmp_path):
        script = tmp_path / "session.dcl"
        script.write_text("CREATE STREAM s (x1 int)\nSTREAMS\nQUIT\n")
        from repro.cli import main

        assert main([str(script)]) == 0


class TestStatsCommand:
    """The STATS console command: overload counters + factory profiles."""

    def test_stats_empty_engine_prints_nothing(self):
        __, out = run_script(["STATS"])
        assert "-- streams" not in out
        assert "-- factories" not in out

    def test_stats_reports_overload_counters(self):
        console = Console(out=io.StringIO(), capacity=3, overflow=ShedOldest())
        console.execute("CREATE STREAM s (x1 int)")
        console.execute("SUBMIT SELECT count(*) AS n FROM s [RANGE 2 SLIDE 2]")
        console.engine.feed("s", rows=[(i,) for i in range(5)])  # 2 shed
        console.execute("STATS")
        out = console.out.getvalue()
        assert "-- streams" in out
        assert "capacity=3" in out
        assert "shed=2" in out

    def test_stats_reports_factory_profiles_after_run(self):
        console, out = run_script(
            [
                "CREATE STREAM s (x1 int)",
                "SUBMIT SELECT count(*) AS n FROM s [RANGE 2 SLIDE 2]",
            ]
        )
        console.engine.feed("s", rows=[(1,), (2,)])
        console.execute("RUN")
        console.execute("STATS")
        out = console.out.getvalue()
        assert "-- factories" in out
        assert "fired 1 window(s)" in out

    def test_unbounded_stream_stats_label(self):
        console, out = run_script(["CREATE STREAM s (x1 int)", "STATS"])
        assert "capacity=unbounded" in console.out.getvalue()


class TestMainFlagParsing:
    """`python -m repro` flag handling: --workers/--capacity/--overflow."""

    def run_main(self, args, tmp_path, script_text="QUIT\n"):
        from repro.cli import main

        script = tmp_path / "session.dcl"
        script.write_text(script_text)
        return main([*args, str(script)])

    def test_capacity_and_overflow_happy_path(self, tmp_path, capsys):
        code = self.run_main(
            ["--capacity", "4", "--overflow", "shed-oldest"],
            tmp_path,
            "CREATE STREAM s (x1 int)\nQUIT\n",
        )
        assert code == 0
        assert "capacity 4, overflow shed-oldest" in capsys.readouterr().out

    def test_inline_flag_values(self, tmp_path, capsys):
        code = self.run_main(
            ["--capacity=2", "--overflow=block:0.5"],
            tmp_path,
            "CREATE STREAM s (x1 int)\nQUIT\n",
        )
        assert code == 0
        assert "overflow block:0.5" in capsys.readouterr().out

    def test_capacity_without_overflow_defaults_to_fail(self, tmp_path, capsys):
        code = self.run_main(
            ["--capacity", "4"], tmp_path, "CREATE STREAM s (x1 int)\nQUIT\n"
        )
        assert code == 0
        assert "overflow fail" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "args",
        [
            ["--capacity"],            # missing value
            ["--capacity", "0"],       # must be positive
            ["--capacity", "nope"],    # not an integer
            ["--workers", "0"],        # must be >= 1
            ["--overflow", "bogus", "--capacity", "4"],   # unknown policy
            ["--overflow", "shed-oldest"],                # needs --capacity
            ["--frobnicate", "1"],     # unknown flag
        ],
    )
    def test_malformed_flags_exit_2(self, args, tmp_path, capsys):
        assert self.run_main(args, tmp_path) == 2
        assert "error:" in capsys.readouterr().err

    def test_overflow_sample_spec_parses(self, tmp_path, capsys):
        code = self.run_main(
            ["--capacity", "8", "--overflow", "sample:0.5:7"],
            tmp_path,
            "CREATE STREAM s (x1 int)\nQUIT\n",
        )
        assert code == 0
        assert "overflow sample:0.5" in capsys.readouterr().out

    def test_spill_tempdir_removed_on_exit(self, tmp_path, monkeypatch):
        """A spilling landmark session must not leak its repro-spill-*
        tempdir: main() closes the engine even on the script path."""
        import os
        import tempfile

        created = []
        real_mkdtemp = tempfile.mkdtemp

        def tracking_mkdtemp(**kwargs):
            path = real_mkdtemp(dir=str(tmp_path), **kwargs)
            created.append(path)
            return path

        monkeypatch.setattr(tempfile, "mkdtemp", tracking_mkdtemp)
        data = tmp_path / "v.csv"
        write_csv(data, {"v": np.arange(64)}, order=["v"])
        script = "\n".join(
            [
                "CREATE STREAM s (v int)",
                "SUBMIT SELECT v FROM s [LANDMARK SLIDE 8]",
                f"FEED s FROM {data} CHUNK 16",
                "QUIT",
            ]
        )
        code = self.run_main(["--landmark-spill-mb", "0.0001"], tmp_path, script)
        assert code == 0
        assert created, "spilling session never allocated its tempdir"
        assert not any(os.path.isdir(path) for path in created)

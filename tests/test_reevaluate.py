"""Unit tests for the DataCellR re-evaluation baseline internals."""

import numpy as np
import pytest

from repro import DataCellEngine
from repro.core.reevaluate import ReevalFactory, _WindowBuffer
from repro.core.windows import WindowSpec
from repro.errors import SchedulerError, UnsupportedQueryError
from repro.kernel.atoms import Atom
from repro.sql.optimizer import optimize
from repro.sql.planner import plan_query


@pytest.fixture
def engine():
    e = DataCellEngine()
    e.create_stream("s", [("x1", "int"), ("x2", "int")])
    return e


class TestWindowBuffer:
    def test_count_based_trim_keeps_last_window(self):
        buffer = _WindowBuffer([("a", Atom.INT)], WindowSpec.sliding(5, 1))
        buffer.append({"a": np.arange(8, dtype=np.int64)}, None)
        buffer.trim()
        assert len(buffer) == 5
        assert buffer.snapshot()["a"].to_list() == [3, 4, 5, 6, 7]

    def test_landmark_never_trims(self):
        buffer = _WindowBuffer([("a", Atom.INT)], WindowSpec.landmark(2))
        buffer.append({"a": np.arange(100, dtype=np.int64)}, None)
        buffer.trim()
        assert len(buffer) == 100

    def test_time_based_trim_by_boundary(self):
        buffer = _WindowBuffer(
            [("a", Atom.INT)], WindowSpec.time_sliding(40, 10)
        )
        ts = np.array([0, 15, 25, 45], dtype=np.int64)
        buffer.append({"a": np.arange(4, dtype=np.int64)}, ts)
        buffer.trim(boundary=50)  # window is [10, 50)
        assert buffer.snapshot()["a"].to_list() == [1, 2, 3]


class TestReevalFactory:
    def test_missing_window_clause(self, engine):
        planned = optimize(plan_query("SELECT x1 FROM s", engine.catalog))
        with pytest.raises(UnsupportedQueryError):
            ReevalFactory(planned, baskets={})

    def test_missing_table_binding(self, engine):
        engine.create_table("dim", [("x2", "int")])
        planned = optimize(
            plan_query(
                "SELECT count(*) FROM s [RANGE 4 SLIDE 2], dim "
                "WHERE s.x2 = dim.x2",
                engine.catalog,
            )
        )
        with pytest.raises(SchedulerError):
            ReevalFactory(planned, baskets={}, tables={})

    def test_only_referenced_columns_buffered(self, engine):
        query = engine.submit(
            "SELECT count(*) FROM s [RANGE 4 SLIDE 2] WHERE x1 > 0", mode="reeval"
        )
        factory = query.factory
        buffer = factory._buffers["s"]
        assert set(buffer._builders) == {"x1"}

    def test_window_buffer_bounded_over_long_run(self, engine):
        query = engine.submit("SELECT count(*) FROM s [RANGE 10 SLIDE 5]", mode="reeval")
        rng = np.random.default_rng(0)
        for __ in range(50):
            engine.feed("s", columns={"x1": rng.integers(0, 5, 5), "x2": rng.integers(0, 5, 5)})
            engine.run_until_idle()
        assert len(query.factory._buffers["s"]) == 10  # exactly one window retained
        assert len(query.results()) == 49

    def test_not_ready_returns_none(self, engine):
        query = engine.submit("SELECT count(*) FROM s [RANGE 4 SLIDE 2]", mode="reeval")
        assert query.factory.step() is None

    def test_tumbling_reeval(self, engine):
        query = engine.submit("SELECT sum(x1) FROM s [RANGE 10]", mode="reeval")
        engine.feed("s", columns={"x1": np.arange(30, dtype=np.int64),
                                  "x2": np.zeros(30, dtype=np.int64)})
        engine.run_until_idle()
        rows = [batch.rows()[0][0] for batch in query.results()]
        assert rows == [sum(range(10)), sum(range(10, 20)), sum(range(20, 30))]


class TestEmittedBatchStability:
    """Emitted batches must stay valid after later windows are consumed.

    A pass-through projection used to return zero-copy views into the
    factory's window buffer; the next step's trim() compacted that buffer
    in place, silently rewriting batches already handed to the emitter
    (found by the differential fuzzer).
    """

    def test_pass_through_columns_survive_later_slides(self, engine):
        query = engine.submit(
            "SELECT x1, x2 FROM s [RANGE 8 SLIDE 4]", mode="reeval"
        )
        rng = np.random.default_rng(7)
        x1 = rng.integers(0, 5, 40)
        x2 = rng.integers(0, 6, 40)
        engine.feed("s", columns={"x1": x1, "x2": x2})
        engine.run_until_idle()
        batches = query.results()
        assert len(batches) == 9
        for k, batch in enumerate(batches):
            lo = k * 4
            expected = list(zip(x1[lo : lo + 8].tolist(), x2[lo : lo + 8].tolist()))
            assert batch.rows() == expected

    def test_mixed_computed_and_plain_columns(self, engine):
        query = engine.submit(
            "SELECT x1, x2 * 2 AS h FROM s [RANGE 8 SLIDE 4]", mode="reeval"
        )
        x1 = np.arange(16, dtype=np.int64)
        x2 = np.arange(16, dtype=np.int64) % 3
        engine.feed("s", columns={"x1": x1, "x2": x2})
        engine.run_until_idle()
        batches = query.results()
        assert len(batches) == 3
        for k, batch in enumerate(batches):
            lo = k * 4
            expected = [
                (int(a), int(b) * 2)
                for a, b in zip(x1[lo : lo + 8], x2[lo : lo + 8])
            ]
            assert batch.rows() == expected

"""Crash-recovery fault tests: kill the engine anywhere, restore, and
assert exactly-once emissions against the fuzzer's reference oracle.

The kill-anywhere sweep is the core property: a :class:`CrashPoint`
fault hook raises :class:`InjectedCrash` at hook ordinal ``at`` — every
ordinal in turn, so the engine dies mid-segment-append (torn frame on
disk), between the append halves, mid-checkpoint (snapshot written but
manifest not), and at every other durability hook point — the test
abandons the engine (no flush, like SIGKILL), restores the data dir,
resumes the workload from the *durable* input offsets, and compares the
final emission list window-by-window against
:class:`~repro.testing.fuzz.reference.ReferenceOracle`.  Equality of
window counts is the exactly-once assertion: a duplicated or lost
window shifts the count.

Workloads are drawn from the fuzz generator at pinned seeds so they
cover aggregation, grouping, time windows with punctuation, and (for
the partitioned sweep) a shard-mergeable shape.
"""

from __future__ import annotations

import itertools
import os

import numpy as np
import pytest

from repro.core.durability import DurabilityError
from repro.core.engine import DataCellEngine
from repro.errors import ReproError
from repro.testing.faults import CrashPoint, InjectedCrash
from repro.testing.fuzz.generator import QueryGenerator, build_engine
from repro.testing.fuzz.reference import ReferenceOracle, rows_equivalent

pytestmark = pytest.mark.recovery

#: Rows fed per stream per round; small enough that a workload spans
#: many journal appends (many distinct crash ordinals).
CHUNK = 7

#: Driver rounds after which a checkpoint is taken, so the sweep kills
#: both before the first snapshot exists and between snapshots.
CHECKPOINT_ROUNDS = (1, 3)


def _workload(seed: int, focus: str):
    rng = np.random.default_rng([seed, 0])
    generator = QueryGenerator(rng)
    query = generator.query(focus)
    return query, generator.feed(query)


def _drive(engine, query, feed) -> None:
    """Feed the whole workload in rounds, resuming from durable offsets.

    ``engine._stream_fed`` counts the rows each stream has *applied* —
    journaled and fed, or replayed from the journal after a restore — so
    slicing every round at that offset makes the driver restartable: a
    crashed-and-restored engine continues exactly where the durable
    state ends, feeding each surviving row exactly once.
    """
    round_no = 0
    while True:
        progressed = False
        for name in query.streams:
            total = feed.row_count(name)
            lo = engine._stream_fed.get(name, 0)
            if lo >= total:
                continue
            hi = min(lo + CHUNK, total)
            columns = {
                col: values[lo:hi] for col, values in feed.columns[name].items()
            }
            ts = feed.timestamps.get(name)
            engine.feed(
                name,
                columns=columns,
                timestamps=ts[lo:hi] if ts is not None else None,
            )
            progressed = True
        if not progressed:
            break
        engine.run_until_idle()
        if round_no in CHECKPOINT_ROUNDS:
            engine.checkpoint()
        round_no += 1
    for name, watermark in feed.punctuate.items():
        engine.advance_time(name, watermark)  # idempotent across restarts
    engine.run_until_idle()


def _run_with_crash(data_dir, query, feed, at: int, partitions: int = 1):
    """One sweep iteration: run, crash at hook ordinal ``at``, recover."""
    engine = build_engine(query, partitions=partitions, data_dir=str(data_dir))
    handle = engine.submit(query.sql, name="q")
    crash = CrashPoint(at)
    engine.install_fault_hook(crash)
    try:
        try:
            _drive(engine, query, feed)
        except InjectedCrash:
            engine.abandon()  # die without flushing, like SIGKILL
            engine = DataCellEngine.restore(str(data_dir))
            engine.run_until_idle()
            try:
                handle = engine.query("q")
            except ReproError:
                handle = engine.submit(query.sql, name="q")
            _drive(engine, query, feed)
        return [batch.rows() for batch in handle.results()], crash.fired
    finally:
        engine.close()


def _assert_exactly_once(got, expected, float_tol: float = 1e-6) -> None:
    assert len(got) == len(expected), (
        f"{len(got)} windows emitted, oracle expects {len(expected)} "
        "(duplicate or lost windows after recovery)"
    )
    for index, (left, right) in enumerate(zip(got, expected)):
        assert rows_equivalent(left, right, float_tol), (index, left, right)


def _sweep(tmp_path, query, feed, partitions: int = 1, min_points: int = 5):
    expected = ReferenceOracle(query).windows(feed)
    fired_points = 0
    for at in itertools.count():
        result, fired = _run_with_crash(
            tmp_path / f"dd-{at}", query, feed, at, partitions=partitions
        )
        _assert_exactly_once(result, expected)
        if not fired:
            break
        fired_points += 1
    # The sweep must have actually exercised crash points, not run clean.
    assert fired_points >= min_points, fired_points
    return fired_points


def test_kill_anywhere_single_partition(tmp_path):
    query, feed = _workload(0, "sum")
    _sweep(tmp_path, query, feed)


def test_kill_anywhere_time_windows_with_punctuation(tmp_path):
    query, feed = _workload(3, "window-time")
    assert feed.punctuate  # the workload must cover advance_time records
    _sweep(tmp_path, query, feed)


@pytest.mark.partition
def test_kill_anywhere_partitioned(tmp_path):
    query, feed = _workload(0, "group-by")
    assert query.partition_ok
    _sweep(tmp_path, query, feed, partitions=2)


@pytest.mark.partition
def test_partitioned_restore_matches_unkilled_single_partition(tmp_path):
    """A killed-and-restored P=2 run equals a never-killed P=1 run."""
    query, feed = _workload(0, "group-by")
    assert query.partition_ok

    baseline = build_engine(query)
    try:
        handle = baseline.submit(query.sql, name="q")
        _drive_plain(baseline, query, feed)
        reference = [batch.rows() for batch in handle.results()]
    finally:
        baseline.close()

    # Kill the partitioned run mid-checkpoint (ordinal inside the first
    # checkpoint's hook window) and once mid-append.
    for label, at in (("mid-append", 4), ("mid-checkpoint", None)):
        data_dir = tmp_path / f"p2-{label}"
        if at is None:
            at = _first_checkpoint_ordinal(query, feed)
        result, fired = _run_with_crash(
            data_dir, query, feed, at, partitions=2
        )
        assert fired, f"{label}: crash ordinal {at} never reached"
        _assert_exactly_once(result, reference)


def _drive_plain(engine, query, feed) -> None:
    """The `_drive` loop without checkpoints, for non-durable baselines."""
    offsets = {name: 0 for name in query.streams}
    while True:
        progressed = False
        for name in query.streams:
            total = feed.row_count(name)
            lo = offsets[name]
            if lo >= total:
                continue
            hi = min(lo + CHUNK, total)
            offsets[name] = hi
            columns = {
                col: values[lo:hi] for col, values in feed.columns[name].items()
            }
            ts = feed.timestamps.get(name)
            engine.feed(
                name,
                columns=columns,
                timestamps=ts[lo:hi] if ts is not None else None,
            )
            progressed = True
        if not progressed:
            break
        engine.run_until_idle()
    for name, watermark in feed.punctuate.items():
        engine.advance_time(name, watermark)
    engine.run_until_idle()


def _first_checkpoint_ordinal(query, feed) -> int:
    """Hook ordinal of the first `checkpoint.snapshot_written` point.

    Counted by a dry run with a recording hook, so the mid-checkpoint
    kill lands between the snapshot write and the manifest rename — the
    half-committed-checkpoint state — wherever the workload puts it.
    """
    from repro.core.durability import HOOK_SNAPSHOT_WRITTEN

    seen: list[str] = []

    class Recorder:
        def __call__(self, point: str) -> None:
            seen.append(point)

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        engine = build_engine(query, data_dir=os.path.join(tmp, "dd"))
        try:
            engine.submit(query.sql, name="q")
            engine.install_fault_hook(Recorder())
            _drive(engine, query, feed)
        finally:
            engine.close()
    return seen.index(HOOK_SNAPSHOT_WRITTEN)


def test_crash_between_feed_and_fire(tmp_path):
    """Mid-firing crash: input journaled, factories never ran."""
    query, feed = _workload(0, "sum")
    expected = ReferenceOracle(query).windows(feed)
    data_dir = tmp_path / "dd"
    engine = build_engine(query, data_dir=str(data_dir))
    try:
        engine.submit(query.sql, name="q")
        name = next(iter(query.streams))
        total = feed.row_count(name)
        half = total // 2
        columns = {c: v[:half] for c, v in feed.columns[name].items()}
        ts = feed.timestamps.get(name)
        engine.feed(
            name,
            columns=columns,
            timestamps=ts[:half] if ts is not None else None,
        )
        # No run_until_idle: the crash hits with every window unfired.
        engine.abandon()

        engine = DataCellEngine.restore(str(data_dir))
        engine.run_until_idle()
        _drive(engine, query, feed)
        handle = engine.query("q")
        _assert_exactly_once(
            [batch.rows() for batch in handle.results()], expected
        )
    finally:
        engine.close()


def test_reset_landmark_is_journaled(tmp_path):
    """Regression: ``reset_landmark`` must write a journal record.

    It mutates query state outside the feed path, so without a record
    a crash after the reset replays the feeds with the reset missing —
    recovery resurrects the discarded cumulative partials and re-emits
    post-reset windows with pre-reset totals.
    """
    data_dir = tmp_path / "dd"
    engine = DataCellEngine(data_dir=str(data_dir))
    try:
        engine.create_stream("s", [("v", "int")])
        handle = engine.submit(
            "SELECT sum(v) AS t FROM s [LANDMARK SLIDE 4]", name="q"
        )
        engine.feed("s", columns={"v": np.arange(12, dtype=np.int64)})
        engine.run_until_idle()
        engine.reset_landmark("q")
        engine.feed(
            "s", columns={"v": np.asarray([10, 20, 30, 40], dtype=np.int64)}
        )
        engine.run_until_idle()
        expected = [batch.rows() for batch in handle.results()]
        # Window 4 covers only post-reset tuples: 10+20+30+40, not the
        # cumulative 66+100 an unreset landmark would report.
        assert expected[-1] == [(100,)]
        engine.abandon()  # die without flushing, like SIGKILL

        engine = DataCellEngine.restore(str(data_dir))
        engine.run_until_idle()
        got = [batch.rows() for batch in engine.query("q").results()]
        assert got == expected
    finally:
        engine.close()


def test_reset_landmark_crash_sweep(tmp_path):
    """Kill-anywhere over a workload that resets mid-stream.

    Every durability hook ordinal in turn, with a ``reset_landmark``
    issued halfway through the feed: the restored engine must replay
    the reset at the same consumption point and converge on the same
    emission list as an unkilled run.
    """
    sql = "SELECT sum(v) AS t FROM s [LANDMARK SLIDE 4]"
    values = np.arange(28, dtype=np.int64)

    def drive(engine) -> None:
        total = len(values)
        while True:
            lo = engine._stream_fed.get("s", 0)
            if lo == total // 2:
                # Issued at a round boundary so a crashed run resuming
                # at this offset re-issues it: the reset pins itself at
                # a quiescent point, making the re-issue an idempotent
                # no-op when the journal already replayed it, while a
                # run whose reset record never became durable gets the
                # reset applied on the retry.
                engine.reset_landmark("q")
                engine.checkpoint()
            if lo >= total:
                break
            hi = min(lo + CHUNK, total)
            engine.feed("s", columns={"v": values[lo:hi]})
            engine.run_until_idle()
        engine.run_until_idle()

    # Reference emissions from an unkilled run.
    ref_dir = tmp_path / "ref"
    engine = DataCellEngine(data_dir=str(ref_dir))
    try:
        engine.create_stream("s", [("v", "int")])
        handle = engine.submit(sql, name="q")
        drive(engine)
        expected = [batch.rows() for batch in handle.results()]
    finally:
        engine.close()
    assert len(expected) == 7

    fired_points = 0
    for at in itertools.count():
        data_dir = tmp_path / f"dd-{at}"
        engine = DataCellEngine(data_dir=str(data_dir))
        engine.create_stream("s", [("v", "int")])
        handle = engine.submit(sql, name="q")
        crash = CrashPoint(at)
        engine.install_fault_hook(crash)
        try:
            try:
                drive(engine)
            except InjectedCrash:
                engine.abandon()
                engine = DataCellEngine.restore(str(data_dir))
                engine.run_until_idle()
                handle = engine.query("q")
                drive(engine)
            got = [batch.rows() for batch in handle.results()]
        finally:
            engine.close()
        _assert_exactly_once(got, expected)
        if not crash.fired:
            break
        fired_points += 1
    assert fired_points >= 5, fired_points


def test_reset_landmark_rejects_landmark_sliding_join(tmp_path):
    """Regression: reset on a landmark ⋈ sliding join must be refused.

    The reset used to clear *both* sides' partials, silently corrupting
    the sliding side — windows that had not expired stopped
    contributing.  The factory now rejects the shape up front, and the
    refused reset must leave emissions untouched.
    """
    sql = (
        "SELECT count(*) FROM s a [LANDMARK SLIDE 8], s2 b [RANGE 8 SLIDE 8] "
        "WHERE a.v = b.v"
    )
    data_dir = tmp_path / "dd"
    engine = DataCellEngine(data_dir=str(data_dir))
    try:
        engine.create_stream("s", [("v", "int")])
        engine.create_stream("s2", [("v", "int")])
        handle = engine.submit(sql, name="q")
        check = engine.submit(sql, mode="reeval", name="check")
        rng = np.random.default_rng(7)
        for stream in ("s", "s2"):
            engine.feed(
                stream, columns={"v": rng.integers(0, 6, 16).astype(np.int64)}
            )
        engine.run_until_idle()
        assert handle.results()  # the join actually emitted

        with pytest.raises(ReproError, match="sliding"):
            engine.reset_landmark("q")

        # The refused reset must not have touched any partials: feeding
        # more input continues the join from unbroken state, matching
        # the never-reset reevaluation twin on the same workload.
        for stream in ("s", "s2"):
            engine.feed(
                stream, columns={"v": rng.integers(0, 6, 16).astype(np.int64)}
            )
        engine.run_until_idle()
        assert handle.result_rows() == check.result_rows()
        engine.abandon()

        # The raised reset must not have written a journal record either:
        # replay is the same never-reset workload.
        engine = DataCellEngine.restore(str(data_dir))
        engine.run_until_idle()
        assert (
            engine.query("q").result_rows() == engine.query("check").result_rows()
        )
    finally:
        engine.close()


def test_no_leaked_segments_or_temp_files(tmp_path):
    """After checkpoints + GC the data dir holds only live artifacts."""
    query, feed = _workload(0, "sum")
    data_dir = tmp_path / "dd"
    engine = build_engine(
        query, data_dir=str(data_dir), landmark_spill_mb=0.0001
    )
    try:
        engine.submit(query.sql, name="q")
        # A landmark query alongside the workload, so the walk below
        # also covers the spill directory's run/manifest hygiene.
        stream = next(iter(query.streams))
        col = next(iter(feed.columns[stream]))
        engine.submit(
            f"SELECT {col} FROM {stream} [LANDMARK SLIDE 5]", name="lm"
        )
        _drive(engine, query, feed)  # takes two checkpoints
        engine.checkpoint()
        assert engine.landmark_spill_stats()["lm"]["runs"] > 0
    finally:
        engine.close()
    found = sorted(
        os.path.relpath(os.path.join(root, f), data_dir)
        for root, __, files in os.walk(data_dir)
        for f in files
    )
    assert not [f for f in found if f.endswith(".tmp")], found
    snapshots = [f for f in found if f.startswith("snapshots/")]
    assert len(snapshots) == 1, found  # GC keeps only the live snapshot
    spill = [f for f in found if f.startswith("spill/")]
    assert spill, found  # the landmark query actually spilled
    for name in found:
        assert (
            name == "MANIFEST.json"
            or name.startswith("segments/segment-")
            or name.startswith("snapshots/snapshot-")
            or name.startswith("spill/lm/run-")
            or name == "spill/lm/SPILL.json"
        ), found


def test_fresh_engine_refuses_existing_data_dir(tmp_path):
    data_dir = tmp_path / "dd"
    engine = DataCellEngine(data_dir=str(data_dir))
    engine.create_stream("s", [("v", "int")])
    engine.close()
    with pytest.raises(DurabilityError):
        DataCellEngine(data_dir=str(data_dir))
    restored = DataCellEngine.restore(str(data_dir))
    assert restored.catalog.has_stream("s")
    restored.close()

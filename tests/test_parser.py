"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql.ast import (
    BinOp,
    ColumnRef,
    FuncCall,
    Literal,
    UnaryOp,
    WindowClause,
)
from repro.sql.parser import parse, parse_expression


class TestSelectList:
    def test_simple_columns(self):
        q = parse("SELECT a, b FROM t")
        assert [item.expr for item in q.select_items] == [
            ColumnRef(None, "a"),
            ColumnRef(None, "b"),
        ]

    def test_aliases(self):
        q = parse("SELECT a AS x, b y FROM t")
        assert q.select_items[0].alias == "x"
        assert q.select_items[1].alias == "y"

    def test_output_names(self):
        q = parse("SELECT a, sum(b), a+1 AS z FROM t")
        assert q.select_items[0].output_name(0) == "a"
        assert q.select_items[1].output_name(1) == "col1"
        assert q.select_items[2].output_name(2) == "z"

    def test_aggregates(self):
        q = parse("SELECT sum(a), count(*), avg(a+b) FROM t")
        first = q.select_items[0].expr
        assert isinstance(first, FuncCall) and first.name == "sum"
        star = q.select_items[1].expr
        assert star.star
        assert isinstance(q.select_items[2].expr.args[0], BinOp)

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct


class TestExpressions:
    def test_precedence(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, BinOp) and e.op == "+"
        assert isinstance(e.right, BinOp) and e.right.op == "*"

    def test_comparison_normalization(self):
        assert parse_expression("a = 1").op == "=="
        assert parse_expression("a <> 1").op == "!="

    def test_and_or_precedence(self):
        e = parse_expression("a > 1 or b > 2 and c > 3")
        assert e.op == "or"
        assert e.right.op == "and"

    def test_not(self):
        e = parse_expression("not a > 1")
        assert isinstance(e, UnaryOp) and e.op == "not"

    def test_unary_minus(self):
        e = parse_expression("-a * 2")
        assert e.op == "*"
        assert isinstance(e.left, UnaryOp)

    def test_parentheses(self):
        e = parse_expression("(1 + 2) * 3")
        assert e.op == "*"
        assert e.left.op == "+"

    def test_literals(self):
        assert parse_expression("1.5") == Literal(1.5)
        assert parse_expression("'x'") == Literal("x")
        assert parse_expression("true") == Literal(True)
        assert parse_expression("null") == Literal(None)

    def test_qualified_columns(self):
        assert parse_expression("s1.x2") == ColumnRef("s1", "x2")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_expression("1 + ")


class TestFromClause:
    def test_alias(self):
        q = parse("SELECT a FROM stream s1")
        assert q.tables[0].name == "stream"
        assert q.tables[0].alias == "s1"

    def test_two_tables(self):
        q = parse("SELECT a FROM s1, s2 WHERE s1.a = s2.a")
        assert len(q.tables) == 2

    def test_sliding_window(self):
        q = parse("SELECT a FROM s [RANGE 100 SLIDE 10]")
        w = q.tables[0].window
        assert w == WindowClause("sliding", 100, 10, False)

    def test_tumbling_window(self):
        assert parse("SELECT a FROM s [RANGE 50]").tables[0].window.kind == "tumbling"
        assert (
            parse("SELECT a FROM s [RANGE 50 SLIDE 50]").tables[0].window.kind
            == "tumbling"
        )

    def test_landmark_window(self):
        w = parse("SELECT a FROM s [LANDMARK SLIDE 10]").tables[0].window
        assert w.kind == "landmark"
        assert w.size is None
        assert w.step == 10

    def test_time_based_window(self):
        w = parse("SELECT a FROM s [RANGE 10 SECONDS SLIDE 2 SECONDS]").tables[0].window
        assert w.time_based
        assert w.size == 10_000_000
        assert w.step == 2_000_000

    def test_time_unit_mismatch(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM s [RANGE 10 SECONDS SLIDE 5]")


class TestClauses:
    def test_full_query(self):
        q = parse(
            "SELECT x1, sum(x2) FROM s [RANGE 100 SLIDE 10] WHERE x1 > 5 "
            "GROUP BY x1 HAVING sum(x2) > 10 ORDER BY x1 DESC LIMIT 3;"
        )
        assert q.where is not None
        assert len(q.group_by) == 1
        assert q.having is not None
        assert q.order_by[0].descending
        assert q.limit == 3

    def test_order_default_asc(self):
        q = parse("SELECT a FROM t ORDER BY a")
        assert not q.order_by[0].descending

    def test_multi_group_by(self):
        q = parse("SELECT a, b, count(*) FROM t GROUP BY a, b")
        assert len(q.group_by) == 2

    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse("SELECT 1")

    def test_garbage_after_query(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t banana extra")

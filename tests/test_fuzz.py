"""Tests for the differential fuzzing harness (:mod:`repro.testing.fuzz`).

Covers the generator (determinism, validity, focus steering), the naive
reference evaluator against hand-computed windows, the four-way oracle,
the metamorphic relations, the minimizer + ``.repro.json`` replay format,
and the ``repro fuzz`` CLI — including the acceptance scenario: an
intentionally injected compensation bug (a monkeypatched merge that drops
a live partial bundle) must be caught, shrunk, and written as a
replayable reproducer.
"""

import io
import json

import numpy as np
import pytest

from repro.core.factory import IncrementalFactory
from repro.testing.fuzz import (
    RELATIONS,
    TAXONOMY,
    Divergence,
    Feed,
    FuzzQuery,
    FuzzSession,
    OracleConfig,
    QueryGenerator,
    ReferenceOracle,
    ReproCase,
    WindowGeometry,
    build_engine,
    canon_rows,
    check_relation,
    check_sorted,
    evaluate_case,
    load_case,
    replay,
    rows_equivalent,
    run_fuzz_cli,
    run_oracle,
    shrink,
    write_case,
)
from repro.testing.fuzz.minimize import FORMAT

SEED = 11


def make_query(**overrides):
    """SELECT c0 AS g0, count(*) AS a0 ... [RANGE 4 SLIDE 2] GROUP BY c0."""
    base = dict(
        select_items=["c0 AS g0", "count(*) AS a0"],
        distinct=False,
        aliases=["s0"],
        windows={"s0": WindowGeometry("sliding", 4, 2)},
        join_cond=None,
        where=None,
        group_by=["c0"],
        having=None,
        order_by=["a0 DESC", "g0"],
        streams={"s0": [("c0", "int"), ("c1", "int")]},
        features=frozenset(
            {"count", "group-by", "order-by", "single-stream", "window-count"}
        ),
    )
    base.update(overrides)
    return FuzzQuery(**base)


def make_feed(c0, c1=None):
    c1 = list(c1) if c1 is not None else list(range(len(c0)))
    return Feed(
        columns={"s0": {"c0": list(c0), "c1": c1}},
        timestamps={"s0": None},
    )


class BrokenMerge:
    """Context manager injecting the compensation bug: the incremental
    merge silently drops the newest live partial bundle, so any window
    assembled from more than one basic window loses tuples."""

    def __enter__(self):
        self._original = IncrementalFactory._live_bundles

        def broken(factory):
            bundles = self._original(factory)
            return bundles[:-1] if len(bundles) > 1 else bundles

        IncrementalFactory._live_bundles = broken
        return self

    def __exit__(self, *exc):
        IncrementalFactory._live_bundles = self._original
        return False


# ----------------------------------------------------------------------
# generator
# ----------------------------------------------------------------------
class TestGenerator:
    def test_deterministic_in_seed_and_iteration(self):
        first = QueryGenerator(np.random.default_rng([SEED, 3]))
        second = QueryGenerator(np.random.default_rng([SEED, 3]))
        qa, qb = first.query("group-by"), second.query("group-by")
        assert qa.sql == qb.sql
        assert first.feed(qa).to_json() == second.feed(qb).to_json()

    def test_different_iterations_differ(self):
        sqls = {
            QueryGenerator(np.random.default_rng([SEED, i])).query().sql
            for i in range(6)
        }
        assert len(sqls) > 1

    @pytest.mark.parametrize("focus", TAXONOMY)
    def test_focus_forces_feature(self, focus):
        generator = QueryGenerator(np.random.default_rng([SEED, 0]))
        assert focus in generator.query(focus).features

    def test_queries_are_valid_in_both_modes(self):
        for i in range(8):
            generator = QueryGenerator(np.random.default_rng([SEED, i]))
            query = generator.query(TAXONOMY[i % len(TAXONOMY)])
            engine = build_engine(query)
            try:
                engine.submit(query.sql, mode="incremental")
                engine.submit(query.sql, mode="reeval")
            finally:
                engine.close()

    def test_feed_covers_every_stream(self):
        generator = QueryGenerator(np.random.default_rng([SEED, 1]))
        query = generator.query("join")
        feed = generator.feed(query)
        for stream in query.streams:
            assert feed.row_count(stream) >= 1

    def test_query_json_roundtrip(self):
        generator = QueryGenerator(np.random.default_rng([SEED, 2]))
        query = generator.query("order-by")
        clone = FuzzQuery.from_json(json.loads(json.dumps(query.to_json())))
        assert clone.sql == query.sql
        assert clone.features == query.features

    def test_render_with_substituted_window(self):
        query = make_query()
        swapped = query.render(windows={"s0": WindowGeometry("sliding", 6, 3)})
        assert "[RANGE 6 SLIDE 3]" in swapped
        assert "[RANGE 4 SLIDE 2]" in query.sql  # original untouched


# ----------------------------------------------------------------------
# reference evaluator
# ----------------------------------------------------------------------
class TestReference:
    def test_hand_computed_grouped_windows(self):
        # RANGE 4 SLIDE 2 over c0 = [0,0,1,1, 0,1, 1,1] -> 3 windows.
        # The reference leaves rows unsorted (sortedness is validated
        # separately against the engines), so compare canonical forms.
        oracle = ReferenceOracle(make_query())
        windows = oracle.windows(make_feed([0, 0, 1, 1, 0, 1, 1, 1]))
        expected = [
            [(0, 2), (1, 2)],   # rows 0-3
            [(1, 3), (0, 1)],   # rows 2-5
            [(1, 3), (0, 1)],   # rows 4-7
        ]
        assert [canon_rows(w) for w in windows] == [
            canon_rows(w) for w in expected
        ]

    def test_where_filters_before_windowing(self):
        query = make_query(where="c0 != 0")
        windows = ReferenceOracle(query).windows(make_feed([0, 0, 1, 1]))
        assert windows == [[(1, 2)]]

    def test_matches_engine_on_generated_queries(self):
        for i in range(6):
            generator = QueryGenerator(np.random.default_rng([SEED, 40 + i]))
            query = generator.query()
            feed = generator.feed(query)
            result = run_oracle(query, feed, OracleConfig())
            assert result.divergence is None, result.divergence.describe()

    def test_canon_rows_tolerates_float_noise(self):
        assert canon_rows([(0.1 + 0.2, 1)]) == canon_rows([(0.3, 1)])
        assert rows_equivalent([(1.0000001, "x")], [(1.0, "x")])
        assert not rows_equivalent([(1.1, "x")], [(1.0, "x")])

    def test_check_sorted_detects_tie_break_violation(self):
        keys = [(1, True), (0, False)]  # col1 DESC, col0 ASC
        assert check_sorted([(0, 2), (1, 2), (3, 1)], keys)
        assert not check_sorted([(1, 2), (0, 2), (3, 1)], keys)  # tie broken desc
        assert not check_sorted([(0, 1), (0, 2)], keys)  # primary asc


# ----------------------------------------------------------------------
# oracle
# ----------------------------------------------------------------------
class TestOracle:
    def test_clean_run_has_no_divergence(self):
        result = run_oracle(
            make_query(), make_feed([0, 0, 1, 1, 0, 1, 1, 1]), OracleConfig()
        )
        assert result.divergence is None
        assert len(result.windows["incremental"]) == 3

    def test_axes_do_not_change_results(self):
        feed = make_feed([0, 0, 1, 1, 0, 1, 1, 1])
        config = OracleConfig(
            workers=3, fragment_sharing=False, duplicate=True,
            chunk_plan={"s0": [3, 5]}, step_chunk=2,
        )
        assert run_oracle(make_query(), feed, config).divergence is None

    def test_injected_compensation_bug_is_caught(self):
        feed = make_feed([0, 0, 1, 1, 0, 1, 1, 1])
        with BrokenMerge():
            divergence = run_oracle(make_query(), feed, OracleConfig()).divergence
        assert divergence is not None
        assert divergence.kind in ("rows", "window-count")
        assert "incremental" in (divergence.left, divergence.right)

    def test_config_json_roundtrip(self):
        config = OracleConfig(workers=3, chunk_plan={"s0": [2, 2]}, step_chunk=3)
        clone = OracleConfig.from_json(json.loads(json.dumps(config.to_json())))
        assert clone == config


# ----------------------------------------------------------------------
# metamorphic relations
# ----------------------------------------------------------------------
class TestMetamorphic:
    @pytest.mark.parametrize("relation", RELATIONS)
    def test_relations_hold_on_correct_engine(self, relation):
        divergence = check_relation(
            relation, make_query(), make_feed([0, 0, 1, 1, 0, 1, 1, 1]),
            seed=SEED, float_tol=1e-6,
        )
        assert divergence is None

    def test_window_count_relation_catches_injected_bug(self):
        # Re-running with |w|=1 changes how many partial bundles each
        # window merges, so a merge that drops a bundle breaks the
        # same-|W|-different-|w| invariance.
        feed = make_feed(list(range(10)))
        with BrokenMerge():
            divergence = check_relation(
                "window-count", make_query(), feed, seed=SEED, float_tol=1e-6
            )
        assert divergence is not None

    def test_relations_are_deterministic(self):
        generator = QueryGenerator(np.random.default_rng([SEED, 5]))
        query = generator.query("window-count")
        feed = generator.feed(query)
        for relation in RELATIONS:
            first = check_relation(relation, query, feed, 99, 1e-6)
            second = check_relation(relation, query, feed, 99, 1e-6)
            assert (first is None) == (second is None)


# ----------------------------------------------------------------------
# minimizer + replay format
# ----------------------------------------------------------------------
class TestMinimize:
    def failing_case(self, rows=12):
        query = make_query(
            where="c1 >= 0", order_by=["a0 DESC", "g0"], having=None
        )
        return ReproCase(
            query=query,
            feed=make_feed(list(range(rows))),
            config=OracleConfig(),
            seed=SEED,
            iteration=0,
        )

    def test_shrink_reduces_rows_and_keeps_failing(self):
        with BrokenMerge():
            case = self.failing_case()
            case.divergence = evaluate_case(case)
            assert case.divergence is not None
            minimized = shrink(case, max_runs=40)
            assert minimized.divergence is not None
            assert evaluate_case(minimized) is not None
        before = case.feed.row_count("s0")
        after = minimized.feed.row_count("s0")
        assert after < before
        assert minimized.query.where is None  # clause-level shrink ran

    def test_repro_json_roundtrip(self, tmp_path):
        case = self.failing_case()
        case.divergence = Divergence("rows", "incremental", "reference", 1, "boom")
        path = write_case(case, tmp_path / "case.repro.json")
        data = json.loads(path.read_text())
        assert data["format"] == FORMAT
        assert data["sql"] == case.query.sql
        loaded = load_case(path)
        assert loaded.query.sql == case.query.sql
        assert loaded.config == case.config
        assert loaded.divergence.kind == "rows"

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.repro.json"
        path.write_text(json.dumps({"format": "other/9"}))
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            load_case(path)

    def test_replay_exit_codes(self, tmp_path):
        case = self.failing_case()
        with BrokenMerge():
            case.divergence = evaluate_case(case)
            assert case.divergence is not None
            path = write_case(case, tmp_path / "case.repro.json")
            assert replay(str(path), out=io.StringIO()) == 1  # reproduces
        out = io.StringIO()
        assert replay(str(path), out=out) == 0  # bug "fixed" -> clean
        assert "did not reproduce" in out.getvalue()


# ----------------------------------------------------------------------
# runner + CLI
# ----------------------------------------------------------------------
class TestRunnerCli:
    def test_small_clean_session(self, tmp_path):
        out = io.StringIO()
        code = run_fuzz_cli(
            ["--budget", "8", "--seed", "3", "--out", str(tmp_path)], out=out
        )
        text = out.getvalue()
        assert code == 0
        assert "zero divergences" in text
        assert "seed=3" in text
        assert "operator class coverage" in text

    def test_seed_printed_when_drawn_from_entropy(self, tmp_path):
        out = io.StringIO()
        run_fuzz_cli(["--budget", "1", "--out", str(tmp_path)], out=out)
        assert "seed=" in out.getvalue()

    def test_bad_budget_exits_2(self):
        assert run_fuzz_cli(["--budget", "0"], out=io.StringIO()) == 2

    def test_replay_missing_file_exits_2(self):
        out = io.StringIO()
        assert run_fuzz_cli(["--replay", "/nonexistent.repro.json"], out=out) == 2
        assert "cannot replay" in out.getvalue()

    def test_session_coverage_counter_tracks_taxonomy(self, tmp_path):
        session = FuzzSession(
            budget=len(TAXONOMY), seed=5, out_dir=str(tmp_path),
            metamorphic=False, lint=False, out=io.StringIO(),
        )
        session.run()
        for feature in ("project", "single-stream"):
            assert session.coverage[feature] > 0

    def test_injected_bug_end_to_end(self, tmp_path):
        """Acceptance: a broken merge is caught, shrunk, and written as a
        committed-format reproducer that replays deterministically."""
        out = io.StringIO()
        with BrokenMerge():
            code = run_fuzz_cli(
                [
                    "--budget", "24", "--seed", "3", "--out", str(tmp_path),
                    "--max-failures", "1", "--no-lint",
                ],
                out=out,
            )
        text = out.getvalue()
        assert code == 1
        assert "FAILURE iteration" in text
        assert "minimized:" in text
        assert "replay: python -m repro fuzz --replay" in text
        repros = sorted(tmp_path.glob("fuzz-3-*.repro.json"))
        assert repros
        data = json.loads(repros[0].read_text())
        assert data["format"] == FORMAT
        assert data["divergence"] is not None
        with BrokenMerge():
            assert replay(str(repros[0]), out=io.StringIO()) == 1
        assert replay(str(repros[0]), out=io.StringIO()) == 0  # after the fix

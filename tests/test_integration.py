"""End-to-end integration scenarios across the whole stack."""

import numpy as np
import pytest

from repro import DataCellEngine
from repro.workloads import join_streams, selection_stream, write_csv, read_csv_chunks

from conftest import assert_rows_equal


class TestPaperWorkloads:
    """The paper's Q1/Q2/Q3 at laptop scale, incremental vs re-evaluation."""

    def test_q1_pipeline(self):
        engine = DataCellEngine()
        engine.create_stream("stream", [("x1", "int"), ("x2", "int")])
        workload = selection_stream(4_000, selectivity=0.2, seed=100)
        sql = (
            f"SELECT x1, sum(x2) FROM stream [RANGE 1024 SLIDE 128] "
            f"WHERE x1 > {workload.threshold} GROUP BY x1 ORDER BY x1"
        )
        qi = engine.submit(sql, mode="incremental")
        qr = engine.submit(sql, mode="reeval")
        engine.feed("stream", columns=workload.columns())
        engine.run_until_idle()
        assert len(qi.results()) == (4_000 - 1024) // 128 + 1
        assert qi.result_rows() == qr.result_rows()

    def test_q2_pipeline(self):
        engine = DataCellEngine()
        engine.create_stream("stream1", [("x1", "int"), ("x2", "int")])
        engine.create_stream("stream2", [("x1", "int"), ("x2", "int")])
        workload = join_streams(2_000, join_selectivity=1e-3, seed=101)
        sql = (
            "SELECT max(s1.x1), avg(s2.x1) FROM stream1 s1 [RANGE 512 SLIDE 64], "
            "stream2 s2 [RANGE 512 SLIDE 64] WHERE s1.x2 = s2.x2"
        )
        qi = engine.submit(sql, mode="incremental")
        qr = engine.submit(sql, mode="reeval")
        engine.feed("stream1", columns=workload.left_columns())
        engine.feed("stream2", columns=workload.right_columns())
        engine.run_until_idle()
        assert len(qi.results()) > 10
        for a, b in zip(qi.results(), qr.results()):
            assert_rows_equal(a.rows(), b.rows(), float_tol=1e-7)

    def test_q3_landmark_pipeline(self):
        engine = DataCellEngine()
        engine.create_stream("stream", [("x1", "int"), ("x2", "int")])
        workload = selection_stream(3_000, selectivity=0.2, seed=102)
        sql = (
            f"SELECT max(x1), sum(x2) FROM stream [LANDMARK SLIDE 300] "
            f"WHERE x1 > {workload.threshold}"
        )
        qi = engine.submit(sql, mode="incremental")
        qr = engine.submit(sql, mode="reeval")
        engine.feed("stream", columns=workload.columns())
        engine.run_until_idle()
        assert len(qi.results()) == 10
        assert qi.result_rows() == qr.result_rows()


class TestMixedWorkload:
    def test_many_concurrent_queries(self):
        """Several queries with different shapes share one engine."""
        engine = DataCellEngine()
        engine.create_stream("s", [("x1", "int"), ("x2", "int")])
        queries = [
            engine.submit("SELECT count(*) FROM s [RANGE 100 SLIDE 50]"),
            engine.submit("SELECT x1, max(x2) FROM s [RANGE 200 SLIDE 100] GROUP BY x1"),
            engine.submit("SELECT avg(x2) FROM s [LANDMARK SLIDE 100]"),
            engine.submit("SELECT x1 FROM s [RANGE 50 SLIDE 25] WHERE x1 > 8"),
            engine.submit("SELECT count(*) FROM s [RANGE 100 SLIDE 50]", mode="reeval"),
        ]
        rng = np.random.default_rng(103)
        for __ in range(10):
            engine.feed(
                "s",
                columns={
                    "x1": rng.integers(0, 10, 100),
                    "x2": rng.integers(0, 100, 100),
                },
            )
            engine.run_until_idle()
        counts = [len(q.results()) for q in queries]
        assert counts == [19, 9, 10, 39, 19]
        # the two count queries (incremental + reeval) agree window by window
        assert queries[0].result_rows() == queries[4].result_rows()

    def test_stream_table_warehouse_scenario(self):
        """Hybrid continuous query enriched by a stored dimension table."""
        engine = DataCellEngine()
        engine.create_stream("events", [("item", "int"), ("qty", "int")])
        dim = engine.create_table("items", [("item", "int"), ("price", "int")])
        dim.append_rows([(i, (i + 1) * 10) for i in range(5)])
        query = engine.submit(
            "SELECT e.item, sum(e.qty) FROM events e [RANGE 40 SLIDE 20], items i "
            "WHERE e.item = i.item AND i.price > 20 GROUP BY e.item ORDER BY e.item"
        )
        rng = np.random.default_rng(104)
        items = rng.integers(0, 8, 120).astype(np.int64)  # items 5-7 unpriced
        qty = rng.integers(1, 5, 120).astype(np.int64)
        engine.feed("events", columns={"item": items, "qty": qty})
        engine.run_until_idle()
        assert len(query.results()) == 5
        for k, batch in enumerate(query.results()):
            lo, hi = k * 20, k * 20 + 40
            expected: dict[int, int] = {}
            for it, q in zip(items[lo:hi], qty[lo:hi]):
                if it in (2, 3, 4):  # price > 20
                    expected[int(it)] = expected.get(int(it), 0) + int(q)
            assert batch.rows() == sorted(expected.items())


class TestThreadedEndToEnd:
    def test_receptor_scheduler_emitter_loop(self):
        """Receptor thread -> basket -> scheduler thread -> emitter."""
        import time

        engine = DataCellEngine()
        engine.create_stream("s", [("x1", "int"), ("x2", "int")])
        query = engine.submit("SELECT count(*) FROM s [RANGE 64 SLIDE 32]")
        receptor = engine.receptor(query, "s")
        engine.start()
        try:
            receptor.start(iter([(i % 10, i) for i in range(640)]))
            receptor.join(timeout=10.0)
            deadline = time.time() + 10.0
            while time.time() < deadline and len(query.results()) < 19:
                time.sleep(0.01)
        finally:
            engine.stop()
        assert len(query.results()) == 19
        assert all(batch.rows() == [(64,)] for batch in query.results())

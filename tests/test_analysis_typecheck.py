"""Atom type inference against the per-opcode signature table."""

import pytest

from repro.analysis import infer_types, output_atoms, signature_for
from repro.analysis.signatures import SIGNATURES, ArgType, SignatureError
from repro.kernel.atoms import Atom
from repro.kernel.execution.interpreter import known_opcodes
from repro.kernel.execution.program import Instr, Lit, Program, Ref


def prog(inputs, outputs, instrs):
    return Program(
        inputs=tuple(inputs), outputs=tuple(outputs), instructions=list(instrs)
    )


def test_every_interpreter_opcode_has_a_signature():
    missing = [op for op in known_opcodes() if signature_for(op) is None]
    assert not missing, f"opcodes without signatures: {missing}"


def test_signature_table_has_no_stale_entries():
    stale = sorted(set(SIGNATURES) - set(known_opcodes()))
    assert not stale, f"signatures for unknown opcodes: {stale}"


def test_sum_preserves_int_and_flt():
    p = prog(
        ["xs"], ["total"], [Instr("aggr.sum", (Ref("xs"),), ("total",))]
    )
    assert output_atoms(p, {"xs": Atom.INT}) == [Atom.INT]
    assert output_atoms(p, {"xs": Atom.FLT}) == [Atom.FLT]
    assert output_atoms(p, {}) == [None]  # unknown propagates silently


def test_division_is_always_float():
    p = prog(
        ["a", "b"],
        ["q"],
        [Instr("calc.div", (Ref("a"), Ref("b")), ("q",))],
    )
    assert output_atoms(p, {"a": Atom.INT, "b": Atom.INT}) == [Atom.FLT]


def test_arithmetic_promotes_to_float():
    p = prog(
        ["a", "b"],
        ["c"],
        [Instr("calc.+", (Ref("a"), Ref("b")), ("c",))],
    )
    assert output_atoms(p, {"a": Atom.INT, "b": Atom.FLT}) == [Atom.FLT]
    assert output_atoms(p, {"a": Atom.INT, "b": Atom.INT}) == [Atom.INT]


def test_group_group_output_shape():
    p = prog(
        ["k"],
        ["gids", "ext", "ng"],
        [Instr("group.group", (Ref("k"),), ("gids", "ext", "ng"))],
    )
    assert output_atoms(p, {"k": Atom.STR}) == [Atom.INT, Atom.OID, Atom.INT]


def test_projection_takes_tail_atom_and_checks_candidates():
    p = prog(
        ["cand", "col"],
        ["out"],
        [Instr("algebra.projection", (Ref("cand"), Ref("col")), ("out",))],
    )
    assert output_atoms(p, {"cand": Atom.OID, "col": Atom.STR}) == [Atom.STR]
    __, report = infer_types(p, {"cand": Atom.INT, "col": Atom.STR})
    assert any("candidate list" in d.message for d in report.errors())


def test_unknown_opcode_is_an_error():
    p = prog(["a"], ["b"], [Instr("algebra.zap", (Ref("a"),), ("b",))])
    __, report = infer_types(p, {"a": Atom.INT})
    assert any("unknown opcode" in d.message for d in report.errors())


def test_arithmetic_over_strings_is_an_error():
    p = prog(
        ["s", "n"],
        ["c"],
        [Instr("calc.+", (Ref("s"), Ref("n")), ("c",))],
    )
    __, report = infer_types(p, {"s": Atom.STR, "n": Atom.INT})
    assert not report.ok


def test_mixed_atom_concatenation_is_an_error():
    p = prog(
        ["a", "b"],
        ["c"],
        [Instr("mat.pack", (Ref("a"), Ref("b")), ("c",))],
    )
    __, report = infer_types(p, {"a": Atom.INT, "b": Atom.STR})
    assert any("atom mismatch" in d.message for d in report.errors())


def test_string_number_comparison_is_an_error():
    p = prog(
        ["s"],
        ["m"],
        [Instr("calc.>", (Ref("s"), Lit(5)), ("m",))],
    )
    __, report = infer_types(p, {"s": Atom.STR})
    assert any("cannot compare" in d.message for d in report.errors())


def test_out_count_mismatch_is_an_error():
    p = prog(
        ["k"],
        ["gids"],
        [Instr("group.group", (Ref("k"),), ("gids",))],
    )
    __, report = infer_types(p, {"k": Atom.INT})
    assert any("binds 1 output slot" in d.message for d in report.errors())


def test_arity_violation_is_an_error():
    p = prog(["a"], ["b"], [Instr("calc.div", (Ref("a"),), ("b",))])
    __, report = infer_types(p, {"a": Atom.INT})
    assert any("at least 2 operand" in d.message for d in report.errors())


def test_signature_apply_rejects_definite_violations_directly():
    sig = signature_for("aggr.sum")
    with pytest.raises(SignatureError):
        sig.apply([ArgType(Atom.STR)])
    assert sig.apply([ArgType(Atom.FLT)]) == (Atom.FLT,)


def test_inference_never_raises_on_garbage():
    p = prog(
        [],
        ["x"],
        [Instr("calc.div", (Lit(1), Lit(0)), ("x",))],
    )
    env, report = infer_types(p)
    assert env["x"] is None
    assert any("column operand" in d.message for d in report.errors())

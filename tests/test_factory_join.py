"""Behavioural tests for two-stream (and hybrid) join factories."""

import numpy as np
import pytest

from repro import DataCellEngine

from conftest import assert_rows_equal, ref_q2


@pytest.fixture
def engine():
    e = DataCellEngine()
    e.create_stream("s", [("x1", "int"), ("x2", "int")])
    e.create_stream("s2", [("x1", "int"), ("x2", "int")])
    table = e.create_table("dim", [("x2", "int"), ("weight", "int")])
    table.append_rows([(k, k * 10) for k in range(8)])
    return e


def feed_both(engine, count, seed=0, domain=12):
    rng = np.random.default_rng(seed)
    a1 = rng.integers(0, 10, count).astype(np.int64)
    a2 = rng.integers(0, domain, count).astype(np.int64)
    b1 = rng.integers(0, 10, count).astype(np.int64)
    b2 = rng.integers(0, domain, count).astype(np.int64)
    engine.feed("s", columns={"x1": a1, "x2": a2})
    engine.feed("s2", columns={"x1": b1, "x2": b2})
    return a1, a2, b1, b2


Q2 = (
    "SELECT max(s1.x1), avg(s2.x1) FROM s s1 [RANGE 40 SLIDE 10], "
    "s2 [RANGE 40 SLIDE 10] WHERE s1.x2 = s2.x2 AND s1.x1 > 2"
)


class TestJoinFactory:
    def test_requires_both_streams(self, engine):
        query = engine.submit(Q2)
        rng = np.random.default_rng(0)
        engine.feed("s", columns={
            "x1": rng.integers(0, 10, 100), "x2": rng.integers(0, 12, 100)
        })
        engine.run_until_idle()
        assert query.results() == []  # right stream empty

    def test_matches_reference(self, engine):
        query = engine.submit(Q2)
        a1, a2, b1, b2 = feed_both(engine, 140, seed=1)
        engine.run_until_idle()
        results = query.results()
        assert len(results) == 11
        for k, batch in enumerate(results):
            lo, hi = k * 10, k * 10 + 40
            expected = ref_q2(a1[lo:hi], a2[lo:hi], b1[lo:hi], b2[lo:hi], 2)
            assert_rows_equal(batch.rows(), expected, float_tol=1e-9)

    def test_matches_reevaluation(self, engine):
        qi = engine.submit(Q2, mode="incremental")
        qr = engine.submit(Q2, mode="reeval")
        feed_both(engine, 200, seed=2)
        engine.run_until_idle()
        for a, b in zip(qi.results(), qr.results()):
            assert_rows_equal(a.rows(), b.rows())

    def test_select_only_join(self, engine):
        sql = (
            "SELECT s1.x1, s2.x1 FROM s s1 [RANGE 20 SLIDE 10], "
            "s2 [RANGE 20 SLIDE 10] WHERE s1.x2 = s2.x2 ORDER BY s1.x1, s2.x1"
        )
        qi = engine.submit(sql)
        qr = engine.submit(sql, mode="reeval")
        feed_both(engine, 80, seed=3, domain=6)
        engine.run_until_idle()
        assert len(qi.results()) == 7
        for a, b in zip(qi.results(), qr.results()):
            assert sorted(a.rows()) == sorted(b.rows())

    def test_grouped_join_aggregate(self, engine):
        sql = (
            "SELECT s1.x1, count(*) FROM s s1 [RANGE 30 SLIDE 10], "
            "s2 [RANGE 30 SLIDE 10] WHERE s1.x2 = s2.x2 GROUP BY s1.x1 ORDER BY s1.x1"
        )
        qi = engine.submit(sql)
        qr = engine.submit(sql, mode="reeval")
        feed_both(engine, 90, seed=4, domain=5)
        engine.run_until_idle()
        assert qi.result_rows() == qr.result_rows()
        assert len(qi.results()) == 7

    def test_residual_predicate(self, engine):
        sql = (
            "SELECT count(*) FROM s s1 [RANGE 30 SLIDE 15], "
            "s2 [RANGE 30 SLIDE 15] WHERE s1.x2 = s2.x2 AND s1.x1 > s2.x1"
        )
        qi = engine.submit(sql)
        qr = engine.submit(sql, mode="reeval")
        feed_both(engine, 120, seed=5, domain=5)
        engine.run_until_idle()
        assert qi.result_rows() == qr.result_rows()

    def test_asymmetric_windows(self, engine):
        sql = (
            "SELECT count(*) FROM s s1 [RANGE 40 SLIDE 20], "
            "s2 [RANGE 20 SLIDE 10] WHERE s1.x2 = s2.x2"
        )
        qi = engine.submit(sql)
        qr = engine.submit(sql, mode="reeval")
        rng = np.random.default_rng(6)
        engine.feed("s", columns={
            "x1": rng.integers(0, 10, 200), "x2": rng.integers(0, 6, 200)
        })
        engine.feed("s2", columns={
            "x1": rng.integers(0, 10, 100), "x2": rng.integers(0, 6, 100)
        })
        engine.run_until_idle()
        assert len(qi.results()) > 2
        assert qi.result_rows() == qr.result_rows()


class TestHybridJoin:
    SQL = (
        "SELECT s1.x2, count(*) FROM s s1 [RANGE 30 SLIDE 10], dim "
        "WHERE s1.x2 = dim.x2 GROUP BY s1.x2 ORDER BY s1.x2"
    )

    def test_stream_table_join(self, engine):
        qi = engine.submit(self.SQL)
        qr = engine.submit(self.SQL, mode="reeval")
        rng = np.random.default_rng(7)
        x1 = rng.integers(0, 10, 90).astype(np.int64)
        x2 = rng.integers(0, 10, 90).astype(np.int64)  # keys 8,9 miss the table
        engine.feed("s", columns={"x1": x1, "x2": x2})
        engine.run_until_idle()
        assert len(qi.results()) == 7
        assert qi.result_rows() == qr.result_rows()
        # reference for the first window
        expected = {}
        for v in x2[:30]:
            if v < 8:
                expected[int(v)] = expected.get(int(v), 0) + 1
        assert qi.results()[0].rows() == sorted(expected.items())


class TestUnsupported:
    def test_self_join_rejected(self, engine):
        from repro.errors import UnsupportedQueryError

        with pytest.raises(UnsupportedQueryError):
            engine.submit(
                "SELECT count(*) FROM s a [RANGE 10 SLIDE 5], s b [RANGE 10 SLIDE 5] "
                "WHERE a.x1 = b.x1"
            )

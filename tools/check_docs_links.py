#!/usr/bin/env python3
"""Verify that internal markdown links in the project docs resolve.

Checks every ``[text](target)`` link in the top-level manuals plus
**every** ``docs/*.md`` file (auto-discovered, so a new document is
covered the moment it lands): relative file targets must exist on disk,
and ``#anchor`` fragments must match a heading slug in the target
document (GitHub slug rules: lowercase, punctuation stripped, spaces to
dashes).  External ``http(s)`` links are ignored — CI must not depend
on the network.

Run directly (``python tools/check_docs_links.py``) or through the
``tests/test_docs_links.py`` wrapper; exits non-zero listing every broken
link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

TOP_LEVEL_DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
]


def discover_docs(root: Path = ROOT) -> list[str]:
    """The checked set: top-level manuals + every ``docs/*.md``."""
    found = sorted(
        str(path.relative_to(root)) for path in (root / "docs").glob("*.md")
    )
    return TOP_LEVEL_DOCS + found


# Kept as a module attribute for the test wrapper / introspection; the
# authoritative set is recomputed per check_links() call.
DOCS = discover_docs()

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def heading_slugs(path: Path) -> set[str]:
    """GitHub-style anchor slugs for every heading in a markdown file."""
    slugs: set[str] = set()
    in_code = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        match = _HEADING.match(line)
        if match:
            title = re.sub(r"`([^`]*)`", r"\1", match.group(1)).strip()
            slug = re.sub(r"[^\w\s-]", "", title.lower())
            slugs.add(re.sub(r"\s+", "-", slug).strip("-"))
    return slugs


def check_links(root: Path = ROOT, docs: list[str] | None = None) -> list[str]:
    """Returns one error string per broken link (empty = all good)."""
    errors: list[str] = []
    for doc in docs if docs is not None else discover_docs(root):
        path = root / doc
        if not path.exists():
            errors.append(f"{doc}: document missing")
            continue
        in_code = False
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if line.lstrip().startswith("```"):
                in_code = not in_code
                continue
            if in_code:
                continue
            for target in _LINK.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                file_part, __, anchor = target.partition("#")
                resolved = (path.parent / file_part) if file_part else path
                if not resolved.exists():
                    errors.append(f"{doc}:{lineno}: broken link target {target!r}")
                    continue
                if anchor and resolved.suffix == ".md":
                    if anchor.lower() not in heading_slugs(resolved):
                        errors.append(
                            f"{doc}:{lineno}: no heading for anchor {target!r}"
                        )
    return errors


def main() -> int:
    errors = check_links()
    for error in errors:
        print(error, file=sys.stderr)
    checked = ", ".join(discover_docs())
    if errors:
        print(f"docs link check: {len(errors)} broken link(s)", file=sys.stderr)
        return 1
    print(f"docs link check: OK ({checked})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

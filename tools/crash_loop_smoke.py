#!/usr/bin/env python3
"""Crash-loop smoke test for ``repro serve --data-dir``.

Starts a durable server, feeds it input through the console, waits for
the feed to be acknowledged (acknowledged input is journaled input),
then SIGKILLs the process — no shutdown hooks, no final checkpoint —
and starts the next cycle against the same data directory.  Every
restart must recover; after N kill cycles a final clean run must come
up, answer ``RESULTS``/``METRICS JSON``, report replayed journal
records, and exit 0, leaving a data directory with a manifest and no
temp files.

This drills the *process-level* loop (argument parsing, recovery on
startup, the background checkpointer thread, console wiring) that the
in-process crash tests in ``tests/test_recovery.py`` cannot see.  Run
directly or via CI's recovery job:

    python tools/crash_loop_smoke.py --cycles 5
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

SETUP = """\
CREATE STREAM s (k int, v int)
SUBMIT SELECT k, sum(v) AS total FROM s [RANGE 8 SLIDE 8] GROUP BY k
"""


def _write_inputs(workdir: Path, cycles: int, rows_per_cycle: int) -> list[Path]:
    paths = []
    for cycle in range(cycles):
        path = workdir / f"chunk-{cycle}.csv"
        base = cycle * rows_per_cycle
        lines = [f"{(base + i) % 5},{base + i}" for i in range(rows_per_cycle)]
        path.write_text("\n".join(lines) + "\n")
        paths.append(path)
    return paths


def _serve(data_dir: Path, script: Path | None) -> subprocess.Popen:
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--data-dir",
        str(data_dir),
        "--checkpoint-interval",
        "0.5",
    ]
    if script is not None:
        command.append(str(script))
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    return subprocess.Popen(
        command,
        cwd=ROOT,
        env=env,
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _await_line(process: subprocess.Popen, needle: str, timeout: float = 30.0) -> str:
    """Read stdout lines until one contains ``needle``; dies on EOF."""
    deadline = time.monotonic() + timeout
    lines: list[str] = []
    assert process.stdout is not None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        lines.append(line.rstrip("\n"))
        if needle in line:
            return lines[-1]
    raise SystemExit(
        f"FAIL: never saw {needle!r} from serve; output was:\n"
        + "\n".join(lines)
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cycles", type=int, default=5, help="kill/restart cycles")
    parser.add_argument("--rows", type=int, default=32, help="rows fed per cycle")
    parser.add_argument(
        "--workdir",
        default=None,
        help="run here instead of a throwaway tempdir (kept on failure, "
        "so CI can upload the data dir as an artifact)",
    )
    args = parser.parse_args()

    if args.workdir is not None:
        os.makedirs(args.workdir, exist_ok=True)
        return _run(Path(args.workdir), args)
    with tempfile.TemporaryDirectory(prefix="repro-crash-loop-") as tmp:
        return _run(Path(tmp), args)


def _run(workdir: Path, args: argparse.Namespace) -> int:
    data_dir = workdir / "data"
    script = workdir / "setup.dcl"
    script.write_text(SETUP)
    chunks = _write_inputs(workdir, args.cycles, args.rows)

    for cycle in range(args.cycles):
        process = _serve(data_dir, script if cycle == 0 else None)
        try:
            _await_line(
                process,
                "created durable engine" if cycle == 0 else "recovered engine",
            )
            assert process.stdin is not None
            process.stdin.write(f"FEED s FROM {chunks[cycle]}\n")
            process.stdin.flush()
            # The ack means this cycle's rows are journaled; anything
            # the kill now destroys must be recoverable.
            _await_line(process, f"fed {args.rows} tuple(s)")
            # Let the 0.5 s background checkpointer land sometimes, so
            # cycles alternate snapshot+suffix and journal-only recovery.
            if cycle % 2:
                time.sleep(0.8)
        finally:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
        print(f"cycle {cycle}: fed {args.rows} rows, killed pid {process.pid}")

    process = _serve(data_dir, None)
    _await_line(process, "recovered engine")
    assert process.stdin is not None
    process.stdin.write("RESULTS\nMETRICS JSON\n")
    process.stdin.flush()
    process.stdin.close()
    assert process.stdout is not None
    output = process.stdout.read()
    process.wait(timeout=60)
    print(output)
    if process.returncode != 0:
        raise SystemExit(f"FAIL: final serve exited {process.returncode}")
    if "-- q1:" not in output:
        raise SystemExit("FAIL: RESULTS did not list the recovered query")
    snapshot = json.loads(output[output.index("{") :])
    durability = snapshot.get("durability")
    if not durability or durability.get("seq", 0) <= 0:
        raise SystemExit(f"FAIL: no durability stats in metrics: {durability}")
    replayed = snapshot["counters"].get("replayed_records", 0)
    if replayed <= 0:
        raise SystemExit("FAIL: final recovery replayed no journal records")

    leftovers = [
        str(p.relative_to(data_dir))
        for p in data_dir.rglob("*")
        if p.is_file() and p.suffix == ".tmp"
    ]
    if leftovers:
        raise SystemExit(f"FAIL: temp files left in data dir: {leftovers}")
    if not (data_dir / "MANIFEST.json").exists():
        raise SystemExit("FAIL: no MANIFEST.json after crash loop")

    print(
        f"OK: {args.cycles} kill/restart cycles, final recovery replayed "
        f"{replayed} record(s), data dir clean"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
